"""Epoch-synchronized sharding for stateful policies and timeline runs.

The exact sharded engine (:mod:`repro.parallel.shard`) only applies when
routing is queue- and flow-independent, which rules out the policies the
paper actually stresses — lc/wlc/p2/hash/dns/wrr, the MuxPool dataplane —
and every timeline run.  This module shards those too, by trading exact
serial equivalence for *bounded staleness*, the behaviour real distributed
load balancers exhibit:

* **Full-stream routing replay.**  Every shard deterministically
  regenerates the whole VIP-wide arrival stream (times, client indices,
  ports) from per-lane :class:`~numpy.random.SeedSequence` children and
  runs an identical *router replica* over **all** arrivals.  Replicas see
  identical inputs and use identical RNG lanes, so every shard computes
  the exact same routing decision for every request without exchanging a
  single routed record.
* **Owned-slice queueing.**  Each shard simulates the M/M/c/K stations
  only for its own DIP slice (persistent :class:`StationSim` instances),
  exactly as the exact engine does.
* **Epoch barriers.**  Time is cut into epochs of ``sync_interval_s``.
  At each boundary the shards exchange one compact snapshot — per-DIP
  in-system counts (per ``(dip, mux)`` when the MUX layer routes a
  count-based policy) — through a single shared-memory float64 board, and
  each replica resets its connection-count view to the true global
  values.  Between barriers a replica's view is *last-synced counts plus
  its own opens since the barrier* (closes go stale), which is precisely
  the bounded-staleness window the paper's distributed MUXes have.
  Timeline events (``dip_fail``/``arrival_scale``/...) are declared epoch
  boundaries too, so every epoch is internally shard-safe.

Because replicas are identical and barrier inputs are identical, the
merged result is **independent of the shard count** and bit-identical
across repeats for a fixed ``(seed, sync_interval_s)`` — ``workers <= 1``
runs one coalesced simulation through the same code path and produces the
same bytes as the process fan-out.

The approximation error is quantified, not hand-waved:
:func:`staleness_crosscheck` reruns a spec serially and at a ladder of
``sync_interval_s`` values and reports mean/p50/p99/drop deltas; the bench
(``benchmarks/bench_parallel_engine.py``) gates on a ceiling and the tests
assert ``sync_interval_s → 0`` convergence.  Replicas for rng- and
hash-driven policies (p2/random/wrandom/dns/hash, ECMP) reproduce the
serial engine's *law*, not its byte stream — p2 draws its pairs from a
dedicated lane and the flow hash is a same-law 64-bit mixer rather than
the serial sha1 — so their cross-check deltas are sampling noise plus
staleness, while lc/wlc/wrr/rr replicas mirror the serial tie-break rules
exactly.
"""

from __future__ import annotations

import heapq
import math
import os
import time
from multiprocessing import get_context, shared_memory
from queue import Empty
from typing import TYPE_CHECKING, Any, Iterable, Mapping, Sequence

import numpy as np

from repro.core.types import DipId
from repro.exceptions import ConfigurationError
from repro.parallel.kernel import (
    arrival_seed,
    flow_seed,
    router_seed,
    service_seed,
)
from repro.parallel.shard import (
    QUEUE_CAPACITY,
    _discard_shm,
    merge_shard_outcomes,
    publish_blocks,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.api.result import RunResult
    from repro.api.spec import ExperimentSpec
    from repro.parallel.planner import ShardPlan

#: epoch routers by policy name; the value describes what crosses the barrier.
EPOCH_ROUTERS: dict[str, str] = {
    "rr": "replayed cursor (nothing to sync)",
    "wrr": "replayed smooth-WRR interleave (nothing to sync)",
    "random": "replayed i.i.d. uniform picks (nothing to sync)",
    "wrandom": "replayed i.i.d. weighted picks (nothing to sync)",
    "hash": "same-law flow hash (nothing to sync)",
    "dns": "replayed per-client resolver cache (nothing to sync)",
    "lc": "per-DIP connection counts at each barrier",
    "wlc": "per-DIP connection counts at each barrier",
    "p2": "CPU snapshot at each barrier, projected by in-epoch picks",
}

#: policies whose routing reads per-replica connection counts (p2 reads
#: the global CPU view instead, so it never needs per-MUX count columns).
_COUNT_POLICIES = frozenset({"lc", "wlc"})

#: RNG lane slots for routers that consume private randomness.
_P2_SLOT = 1
_DNS_SLOT = 2
_RANDOM_SLOT = 3
_WRANDOM_SLOT = 4

#: client-pool constants mirrored from :class:`repro.sim.client.ClientPool`.
_NUM_CLIENTS = 8
_PORT_MIN = 1024
_PORT_SPAN = 65000 - _PORT_MIN + 1

_ARRIVAL_CHUNK = 8192
_SERVICE_BATCH = 512
_DNS_TTL_S = 30.0

#: boundary coalescing tolerance — event times landing on a sync tick.
_EPS = 1e-9

#: a stuck barrier means a dead sibling; fail loudly instead of hanging.
_SYNC_TIMEOUT_S = 600.0

_NAN = float("nan")


# ---------------------------------------------------------------------------
# deterministic VIP-wide arrival stream
# ---------------------------------------------------------------------------


class EpochArrivalStream:
    """The VIP-wide arrival stream, consumed epoch by epoch.

    Every shard owns an identical instance: arrival gaps come from the
    run's arrival lane, client indices from the flow lane, and ports are a
    pure function of the arrival ordinal (mirroring
    ``ClientPool.next_batch``'s rolling counter) — so the stream needs no
    cross-shard coordination at all.  ``arrival_scale`` events rescale the
    *buffered* future gaps around the boundary, the memoryless transform
    ``RequestCluster.scale_arrivals`` applies to its latched arrivals.
    """

    def __init__(self, seed: int, rate_rps: float, *, num_clients: int = _NUM_CLIENTS):
        if rate_rps <= 0:
            raise ConfigurationError("rate_rps must be positive")
        self._rng = np.random.default_rng(arrival_seed(seed))
        self._flow_rng = np.random.default_rng(flow_seed(seed))
        self._rate = float(rate_rps)
        self._num_clients = int(num_clients)
        self._clock = 0.0
        self._times = np.empty(0, dtype=np.float64)
        self._clients = np.empty(0, dtype=np.int64)
        self._consumed = 0

    @property
    def rate_rps(self) -> float:
        return self._rate

    def set_rate(self, rate_rps: float, *, at_time: float) -> None:
        """Change the arrival rate at ``at_time`` (an epoch boundary)."""
        if rate_rps <= 0:
            raise ConfigurationError("rate_rps must be positive")
        scale = self._rate / rate_rps
        if scale != 1.0:
            self._times = at_time + (self._times - at_time) * scale
            self._clock = at_time + (self._clock - at_time) * scale
        self._rate = float(rate_rps)

    def _refill(self) -> None:
        gaps = self._rng.exponential(1.0 / self._rate, size=_ARRIVAL_CHUNK)
        times = np.cumsum(gaps)
        times += self._clock
        self._clock = float(times[-1])
        self._times = np.concatenate([self._times, times])
        self._clients = np.concatenate(
            [self._clients, self._flow_rng.integers(self._num_clients, size=_ARRIVAL_CHUNK)]
        )

    def take_until(self, t_end: float) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """All arrivals strictly before ``t_end``: (times, clients, ports)."""
        while self._clock < t_end:
            self._refill()
        cut = int(np.searchsorted(self._times, t_end, side="left"))
        times = self._times[:cut]
        clients = self._clients[:cut]
        self._times = self._times[cut:]
        self._clients = self._clients[cut:]
        ports = (
            self._consumed + 1 + np.arange(cut, dtype=np.int64)
        ) % _PORT_SPAN + _PORT_MIN
        self._consumed += cut
        return times, clients, ports


# ---------------------------------------------------------------------------
# router replicas
# ---------------------------------------------------------------------------


def _mix64(x: np.ndarray) -> np.ndarray:
    """splitmix64 finalizer — a vectorized same-law stand-in for sha1."""
    x = x + np.uint64(0x9E3779B97F4A7C15)
    x ^= x >> np.uint64(30)
    x *= np.uint64(0xBF58476D1CE4E5B9)
    x ^= x >> np.uint64(27)
    x *= np.uint64(0x94D049BB133111EB)
    x ^= x >> np.uint64(31)
    return x


def _flow_key(clients: np.ndarray, ports: np.ndarray, salt: int) -> np.ndarray:
    key = clients.astype(np.uint64) << np.uint64(32)
    key |= ports.astype(np.uint64)
    return _mix64(key + np.uint64(salt))


_HASH_SALT = 0x1B873593
_ECMP_SALT = 0xE6546B64


class _EpochRouter:
    """Base class for per-policy router replicas.

    Replicas hold the *entire* pool's routing state — health mask, weights
    and (for count-based policies) the last-synced per-DIP counts — and
    route every arrival, not just the shard's own.  ``needs_counts``
    marks the policies whose decisions read connection counts; only those
    force per-``(dip, mux)`` tracking in the stations.
    """

    needs_counts = False

    def __init__(self, num_dips: int, dip_rank: Sequence[int]):
        self._n = num_dips
        self._healthy = np.ones(num_dips, dtype=bool)
        self._weights = np.ones(num_dips, dtype=np.float64)
        #: tie-break rank: position of each DIP's id in sorted(dip_ids),
        #: mirroring the serial engine's ``(metric, dip_id)`` ordering.
        self._rank = np.asarray(dip_rank, dtype=np.int64)
        self._healthy_idx = np.arange(num_dips, dtype=np.int64)

    def _candidates(self) -> np.ndarray:
        if self._healthy_idx.size == 0:
            raise ConfigurationError("no healthy DIPs available")
        return self._healthy_idx

    def _rebuild(self) -> None:  # pragma: no cover - trivial default
        pass

    def set_healthy(self, index: int, healthy: bool) -> None:
        self._healthy[index] = healthy
        self._healthy_idx = np.flatnonzero(self._healthy)
        self._rebuild()

    def set_weights(self, weights: np.ndarray) -> None:
        self._weights = np.asarray(weights, dtype=np.float64).copy()
        self._rebuild()

    def sync(self, counts: np.ndarray, cpu: np.ndarray, now: float) -> None:
        """Reset count-derived state to the synced global view."""

    def route(
        self, times: np.ndarray, clients: np.ndarray, ports: np.ndarray
    ) -> np.ndarray:
        raise NotImplementedError


class _RoundRobinRouter(_EpochRouter):
    """Global cursor over the healthy set, continued across health changes."""

    def __init__(self, num_dips: int, dip_rank: Sequence[int]):
        super().__init__(num_dips, dip_rank)
        self._cursor = 0

    def route(self, times, clients, ports):
        h = self._candidates()
        n = times.size
        out = h[(self._cursor + np.arange(n, dtype=np.int64)) % h.size]
        self._cursor += n
        return out.astype(np.int32)


class _RandomRouter(_EpochRouter):
    def __init__(self, num_dips: int, dip_rank: Sequence[int], *, seed: int, replica: int = 0):
        super().__init__(num_dips, dip_rank)
        self._rng = np.random.default_rng(router_seed(seed, _RANDOM_SLOT, replica))

    def route(self, times, clients, ports):
        h = self._candidates()
        return h[self._rng.integers(h.size, size=times.size)].astype(np.int32)


class _WeightedRandomRouter(_EpochRouter):
    def __init__(self, num_dips: int, dip_rank: Sequence[int], *, seed: int, replica: int = 0):
        super().__init__(num_dips, dip_rank)
        self._rng = np.random.default_rng(router_seed(seed, _WRANDOM_SLOT, replica))

    def route(self, times, clients, ports):
        h = self._candidates()
        w = np.clip(self._weights[h], 0.0, None)
        total = w.sum()
        if total <= 0:
            w = np.ones(h.size)
            total = float(h.size)
        cdf = np.cumsum(w / total)
        cdf[-1] = 1.0
        picks = np.searchsorted(cdf, self._rng.random(times.size), side="right")
        return h[picks].astype(np.int32)


class _SmoothWrrRouter(_EpochRouter):
    """Smooth weighted round robin with the serial engine's exact rules:

    first-max-wins on ties (pool order), all-zero weights degrade to
    uniform, accumulators persist across health changes and reset only
    when weights change.
    """

    def __init__(self, num_dips: int, dip_rank: Sequence[int]):
        super().__init__(num_dips, dip_rank)
        self._current = np.zeros(num_dips, dtype=np.float64)

    def set_weights(self, weights: np.ndarray) -> None:
        super().set_weights(weights)
        self._current[:] = 0.0

    def route(self, times, clients, ports):
        h = self._candidates()
        w = np.clip(self._weights[h], 0.0, None)
        total = w.sum()
        if total <= 0:
            w = np.ones(h.size)
            total = float(h.size)
        current = self._current[h]  # fancy-index copy; written back below
        out = np.empty(times.size, dtype=np.int32)
        argmax = np.argmax
        for i in range(times.size):
            current += w
            best = int(argmax(current))
            current[best] -= total
            out[i] = h[best]
        self._current[h] = current
        return out


class _LeastConnectionRouter(_EpochRouter):
    """lc/wlc over a (score, rank, index) heap rebuilt at every sync.

    Between barriers only the popped entry's score changes (its own open),
    so ``heapreplace`` keeps the heap exact; closes are invisible until
    the next barrier — that *is* the staleness model.
    """

    needs_counts = True

    def __init__(self, num_dips: int, dip_rank: Sequence[int], *, weighted: bool):
        super().__init__(num_dips, dip_rank)
        self._weighted = weighted
        self._counts = np.zeros(num_dips, dtype=np.float64)
        self._heap: list[tuple[float, int, int]] = []
        self._rebuild()

    def _score(self, index: int) -> float:
        if not self._weighted:
            return float(self._counts[index])
        weight = self._weights[index]
        if weight <= 0:
            weight = 1e-9
        return float(self._counts[index]) / weight

    def _rebuild(self) -> None:
        self._heap = [
            (self._score(i), int(self._rank[i]), int(i))
            for i in self._healthy_idx
        ]
        heapq.heapify(self._heap)

    def sync(self, counts, cpu, now):
        self._counts = counts.astype(np.float64).copy()
        self._rebuild()

    def route(self, times, clients, ports):
        heap = self._heap
        if not heap:
            raise ConfigurationError("no healthy DIPs available")
        counts = self._counts
        out = np.empty(times.size, dtype=np.int32)
        heapreplace = heapq.heapreplace
        for i in range(times.size):
            _, rank, index = heap[0]
            out[i] = index
            counts[index] += 1.0
            heapreplace(heap, (self._score(index), rank, index))
        return out


class _PowerOfTwoRouter(_EpochRouter):
    """p2 with pre-drawn distinct pairs from a dedicated RNG lane.

    The serial ``_load`` rule verbatim: the synced CPU view when positive
    (the engine's utilization snapshots become the barrier snapshot here),
    otherwise the connection count.  The serial count is live — it
    decrements on completions a shard cannot observe between barriers, and
    a raw stale count would let one pick at an idle DIP outweigh every
    busy DIP's sub-1.0 CPU value and starve it until the next barrier —
    so the replica drains its count projection deterministically at the
    station's expected service rate (``min(count, servers) / mean_service``,
    at base capacity), feeding an idle DIP at roughly its completion rate
    exactly as the serial feedback loop does.
    """

    def __init__(
        self,
        num_dips: int,
        dip_rank: Sequence[int],
        *,
        seed: int,
        servers: Sequence[float] | None = None,
        drain_rps: Sequence[float] | None = None,
        replica: int = 0,
    ):
        super().__init__(num_dips, dip_rank)
        self._rng = np.random.default_rng(router_seed(seed, _P2_SLOT, replica))
        self._servers = (
            np.asarray(servers, dtype=np.float64)
            if servers is not None
            else np.ones(num_dips, dtype=np.float64)
        )
        self._mean_service = self._servers / (
            np.asarray(drain_rps, dtype=np.float64)
            if drain_rps is not None
            else self._servers
        )
        self._counts = np.zeros(num_dips, dtype=np.float64)
        self._cpu = np.zeros(num_dips, dtype=np.float64)
        self._last = np.zeros(num_dips, dtype=np.float64)

    def sync(self, counts, cpu, now):
        self._counts = counts.astype(np.float64).copy()
        self._cpu = cpu.astype(np.float64).copy()
        self._last.fill(now)

    def _drained(self, slot: int, t: float) -> float:
        """The count projection at ``t`` (drains while servers are busy)."""
        c = self._counts[slot]
        if c > 0.0:
            dt = t - self._last[slot]
            if dt > 0.0:
                drain = min(c, self._servers[slot]) / self._mean_service[slot]
                c = max(0.0, c - drain * dt)
            self._counts[slot] = c
        self._last[slot] = t
        return c

    def route(self, times, clients, ports):
        h = self._candidates()
        n = times.size
        if h.size == 1:
            return np.full(n, h[0], dtype=np.int32)
        # Ordered sampling without replacement, two vectorized draws.
        first = self._rng.integers(h.size, size=n)
        second = self._rng.integers(h.size - 1, size=n)
        second = second + (second >= first)
        counts = self._counts
        cpu = self._cpu
        out = np.empty(n, dtype=np.int32)
        for i in range(n):
            t = times[i]
            a = int(h[first[i]])
            b = int(h[second[i]])
            load_a = cpu[a] if cpu[a] > 0 else self._drained(a, t)
            load_b = cpu[b] if cpu[b] > 0 else self._drained(b, t)
            pick = a if load_a <= load_b else b
            counts[pick] += 1.0
            out[i] = pick
        return out


class _FlowHashRouter(_EpochRouter):
    """Flow-sticky hash over the healthy set (same law as the serial sha1)."""

    def route(self, times, clients, ports):
        h = self._candidates()
        key = _flow_key(clients, ports, _HASH_SALT)
        return h[(key % np.uint64(h.size)).astype(np.int64)].astype(np.int32)


class _DnsRouter(_EpochRouter):
    """DNS-weighted routing replayed through a per-client TTL cache.

    A cache hit requires freshness *and* a healthy DIP; misses resolve a
    weighted draw over the healthy set (all-zero weights degrade to
    uniform) and refresh the entry — ``DnsWeightedPolicy``'s rules, with
    per-arrival times standing in for ``advance_time``.
    """

    def __init__(
        self,
        num_dips: int,
        dip_rank: Sequence[int],
        *,
        seed: int,
        replica: int = 0,
        num_clients: int = _NUM_CLIENTS,
        cache_ttl_s: float = _DNS_TTL_S,
    ):
        super().__init__(num_dips, dip_rank)
        self._rng = np.random.default_rng(router_seed(seed, _DNS_SLOT, replica))
        self._ttl = float(cache_ttl_s)
        self._cache_dip = np.full(num_clients, -1, dtype=np.int64)
        self._cache_exp = np.zeros(num_clients, dtype=np.float64)
        self._uniforms: list[float] = []
        self._cdf: np.ndarray | None = None
        self._rebuild()

    def _rebuild(self) -> None:
        h = self._healthy_idx
        if h.size == 0:
            self._cdf = None
            return
        w = np.clip(self._weights[h], 0.0, None)
        total = w.sum()
        if total <= 0:
            w = np.ones(h.size)
            total = float(h.size)
        cdf = np.cumsum(w / total)
        cdf[-1] = 1.0
        self._cdf = cdf

    def _draw(self) -> float:
        if not self._uniforms:
            self._uniforms = self._rng.random(1024)[::-1].tolist()
        return self._uniforms.pop()

    def route(self, times, clients, ports):
        h = self._candidates()
        cdf = self._cdf
        assert cdf is not None
        healthy = self._healthy
        cache_dip = self._cache_dip
        cache_exp = self._cache_exp
        ttl = self._ttl
        out = np.empty(times.size, dtype=np.int32)
        searchsorted = np.searchsorted
        for i in range(times.size):
            client = clients[i]
            t = times[i]
            cached = cache_dip[client]
            if cached >= 0 and cache_exp[client] > t and healthy[cached]:
                out[i] = cached
                continue
            pick = int(h[int(searchsorted(cdf, self._draw(), side="right"))])
            cache_dip[client] = pick
            cache_exp[client] = t + ttl
            out[i] = pick
        return out


class _MuxEcmpRouter:
    """The MuxPool dataplane: ECMP over per-MUX inner router replicas.

    ECMP hashes the flow with a distinct salt (the serial engine's
    ``salt="ecmp"``) and each MUX routes its sub-stream with a private
    replica; count-based inners sync their per-MUX count column while the
    CPU view stays global, matching how the serial engine feeds every MUX
    the same utilization snapshots.
    """

    def __init__(self, inners: Sequence[_EpochRouter]):
        self._inners = list(inners)
        self.needs_counts = self._inners[0].needs_counts
        self.num_muxes = len(self._inners)

    def route_mux(self, times, clients, ports):
        muxes = (
            _flow_key(clients, ports, _ECMP_SALT) % np.uint64(self.num_muxes)
        ).astype(np.int64)
        dips = np.empty(times.size, dtype=np.int32)
        for m, inner in enumerate(self._inners):
            mask = muxes == m
            if mask.any():
                dips[mask] = inner.route(times[mask], clients[mask], ports[mask])
        return dips, muxes

    def sync(self, counts, cpu, now):
        if self.needs_counts:
            for m, inner in enumerate(self._inners):
                inner.sync(np.ascontiguousarray(counts[:, m]), cpu, now)
        else:
            for inner in self._inners:
                inner.sync(counts, cpu, now)

    def set_healthy(self, index, healthy):
        for inner in self._inners:
            inner.set_healthy(index, healthy)

    def set_weights(self, weights):
        for inner in self._inners:
            inner.set_weights(weights)


def make_epoch_router(
    policy: str,
    *,
    num_dips: int,
    dip_rank: Sequence[int],
    seed: int,
    num_muxes: int = 1,
    num_clients: int = _NUM_CLIENTS,
    servers: Sequence[float] | None = None,
    drain_rps: Sequence[float] | None = None,
) -> _EpochRouter | _MuxEcmpRouter:
    """Build the router replica for ``policy`` (MUX-wrapped when asked)."""

    def build(replica: int) -> _EpochRouter:
        if policy == "rr":
            return _RoundRobinRouter(num_dips, dip_rank)
        if policy == "wrr":
            return _SmoothWrrRouter(num_dips, dip_rank)
        if policy == "random":
            return _RandomRouter(num_dips, dip_rank, seed=seed, replica=replica)
        if policy == "wrandom":
            return _WeightedRandomRouter(num_dips, dip_rank, seed=seed, replica=replica)
        if policy == "lc":
            return _LeastConnectionRouter(num_dips, dip_rank, weighted=False)
        if policy == "wlc":
            return _LeastConnectionRouter(num_dips, dip_rank, weighted=True)
        if policy == "p2":
            return _PowerOfTwoRouter(
                num_dips,
                dip_rank,
                seed=seed,
                servers=servers,
                drain_rps=drain_rps,
                replica=replica,
            )
        if policy == "hash":
            return _FlowHashRouter(num_dips, dip_rank)
        if policy == "dns":
            return _DnsRouter(
                num_dips,
                dip_rank,
                seed=seed,
                replica=replica,
                num_clients=num_clients,
            )
        raise ConfigurationError(f"policy {policy!r} has no epoch router")

    if num_muxes <= 1:
        return build(0)
    return _MuxEcmpRouter([build(m) for m in range(num_muxes)])


# ---------------------------------------------------------------------------
# persistent per-DIP stations
# ---------------------------------------------------------------------------


class StationSim:
    """A persistent M/M/c/K station advanced epoch by epoch.

    The same Kiefer-Wolfowitz recursion as
    :func:`repro.parallel.kernel.simulate_station`, but with state (server
    heap, in-system heap, RNG buffer, counters) carried across calls so
    the queue survives epoch boundaries, plus:

    * ``counts_at(t)`` — the in-system population at a barrier (per MUX
      when the routed policy needs per-MUX counts);
    * ``set_capacity_factor`` — timeline capacity events rescale the mean
      service time of draws consumed after the boundary (the serial
      engine rescales at service start; equivalent up to in-queue draws).
    """

    __slots__ = (
        "dip_id",
        "servers",
        "_rng",
        "_mean",
        "_base_mean",
        "_free",
        "_in_system",
        "_svc",
        "_capacity",
        "_measure_from",
        "_track_mux",
        "_num_muxes",
        "_lat",
        "_done",
        "_ts",
        "submitted",
        "dropped",
        "busy_seconds",
    )

    def __init__(
        self,
        dip_id: str,
        global_index: int,
        *,
        servers: int,
        mean_service_s: float,
        base_capacity_rps: float,
        seed: int,
        queue_capacity: int = QUEUE_CAPACITY,
        measure_from: float = 0.0,
        num_muxes: int = 1,
        track_mux: bool = False,
    ):
        if servers < 1:
            raise ConfigurationError("servers must be >= 1")
        self.dip_id = dip_id
        self.servers = servers
        self._rng = np.random.default_rng(service_seed(seed, global_index))
        self._mean = float(mean_service_s)
        self._base_mean = servers / float(base_capacity_rps)
        self._free = [0.0] * servers
        self._in_system: list = []
        self._svc: list[float] = []
        self._capacity = servers + queue_capacity
        self._measure_from = measure_from
        self._track_mux = track_mux
        self._num_muxes = num_muxes
        self._lat: list[float] = []
        self._done: list[bool] = []
        self._ts: list[float] = []
        self.submitted = 0
        self.dropped = 0
        self.busy_seconds = 0.0

    def set_capacity_factor(self, factor: float) -> None:
        if factor <= 0:
            raise ConfigurationError("capacity factor must be positive")
        self._mean = self._base_mean / factor

    def advance(self, arrivals: np.ndarray, muxes: np.ndarray | None = None) -> None:
        """Admit this station's arrivals for one epoch (arrival-ordered)."""
        if arrivals.size == 0:
            return
        free = self._free
        in_system = self._in_system
        svc = self._svc
        capacity = self._capacity
        measure_from = self._measure_from
        track_mux = self._track_mux
        lat_append = self._lat.append
        done_append = self._done.append
        ts_append = self._ts.append
        heappush = heapq.heappush
        heappop = heapq.heappop
        heapreplace = heapq.heapreplace
        mux_list = muxes.tolist() if (track_mux and muxes is not None) else None
        for j, a in enumerate(arrivals.tolist()):
            if track_mux:
                while in_system and in_system[0][0] <= a:
                    heappop(in_system)
            else:
                while in_system and in_system[0] <= a:
                    heappop(in_system)
            measured = a >= measure_from
            if measured:
                self.submitted += 1
            if len(in_system) >= capacity:
                if measured:
                    self.dropped += 1
                    lat_append(_NAN)
                    done_append(False)
                    ts_append(a)
                continue
            if not svc:
                svc = self._rng.standard_exponential(_SERVICE_BATCH)[::-1].tolist()
                self._svc = svc
            s = svc.pop() * self._mean
            f = free[0]
            start = a if a > f else f
            dep = start + s
            heapreplace(free, dep)
            if track_mux:
                heappush(in_system, (dep, mux_list[j] if mux_list is not None else 0))
            else:
                heappush(in_system, dep)
            self.busy_seconds += s
            if measured:
                lat_append((dep - a) * 1000.0)
                done_append(True)
                ts_append(dep)

    def counts_at(self, t: float) -> np.ndarray:
        """In-system population at ``t`` (length ``num_muxes`` when tracked)."""
        in_system = self._in_system
        heappop = heapq.heappop
        if self._track_mux:
            while in_system and in_system[0][0] <= t:
                heappop(in_system)
            counts = np.zeros(self._num_muxes, dtype=np.float64)
            for _, mux in in_system:
                counts[mux] += 1.0
            return counts
        while in_system and in_system[0] <= t:
            heappop(in_system)
        return np.asarray([float(len(in_system))])

    def finish(self) -> dict[str, Any]:
        """This station's record block (the exact engine's block schema)."""
        return {
            "dip": self.dip_id,
            "count": len(self._lat),
            "submitted": self.submitted,
            "dropped": self.dropped,
            "busy_seconds": self.busy_seconds,
            "servers": self.servers,
            "latency_ms": np.asarray(self._lat, dtype=np.float64),
            "completed": np.asarray(self._done, dtype=bool),
            "timestamp": np.asarray(self._ts, dtype=np.float64),
        }


# ---------------------------------------------------------------------------
# one shard = full-stream replica + owned stations
# ---------------------------------------------------------------------------


class EpochShardSim:
    """One shard's simulation: a full router replica plus owned stations.

    Built from a plain payload dict so process workers and the inline
    driver construct byte-identical simulations.  The count board is a
    flat float64 array with one slot per DIP (per ``(dip, mux)`` pair when
    the policy is count-based under a MUX layer); ``owned_slots`` names
    the slots this shard writes at each barrier.
    """

    def __init__(self, payload: Mapping[str, Any]):
        seed = payload["seed"]
        self._num_muxes = int(payload["num_muxes"])
        stations_meta = payload["stations"]
        num_dips = len(stations_meta)
        owned = set(payload["owned"])
        self._track_mux = bool(payload["track_mux"])
        mux_dim = self._num_muxes if self._track_mux else 1
        self._mux_dim = mux_dim
        self._servers = np.asarray(
            [servers for _, _, servers, _, _ in stations_meta], dtype=np.float64
        )
        drain_rps = np.asarray(
            [
                servers / mean_service_s
                for _, _, servers, mean_service_s, _ in stations_meta
            ],
            dtype=np.float64,
        )
        self._router = make_epoch_router(
            payload["policy"],
            num_dips=num_dips,
            dip_rank=payload["dip_rank"],
            seed=seed,
            num_muxes=self._num_muxes,
            num_clients=payload["num_clients"],
            servers=self._servers,
            drain_rps=drain_rps,
        )
        if payload["weights"] is not None:
            self._router.set_weights(np.asarray(payload["weights"], dtype=np.float64))
        self._stream = EpochArrivalStream(
            seed, payload["rate_rps"], num_clients=payload["num_clients"]
        )
        self._base_rate = float(payload["rate_rps"])
        self._stations: dict[int, StationSim] = {}
        for dip_id, index, servers, mean_service_s, base_capacity_rps in stations_meta:
            if index not in owned:
                continue
            self._stations[index] = StationSim(
                dip_id,
                index,
                servers=servers,
                mean_service_s=mean_service_s,
                base_capacity_rps=base_capacity_rps,
                seed=seed,
                queue_capacity=payload["queue_capacity"],
                measure_from=payload["measure_from"],
                num_muxes=mux_dim,
                track_mux=self._track_mux,
            )
        self.owned_slots = np.concatenate(
            [
                np.arange(index * mux_dim, (index + 1) * mux_dim, dtype=np.int64)
                for index in sorted(self._stations)
            ]
        )
        self.num_slots = num_dips * mux_dim

    def advance_to(self, t: float) -> np.ndarray:
        """Route + simulate up to ``t``; return owned slot counts at ``t``."""
        times, clients, ports = self._stream.take_until(t)
        if isinstance(self._router, _MuxEcmpRouter):
            dips, muxes = self._router.route_mux(times, clients, ports)
        else:
            dips = self._router.route(times, clients, ports)
            muxes = None
        counts = np.empty(self.owned_slots.size, dtype=np.float64)
        offset = 0
        for index in sorted(self._stations):
            station = self._stations[index]
            mask = dips == index
            station.advance(
                times[mask], muxes[mask] if muxes is not None else None
            )
            station_counts = station.counts_at(t)
            counts[offset : offset + station_counts.size] = station_counts
            offset += station_counts.size
        return counts

    def apply_sync(self, board: np.ndarray, now: float) -> None:
        """Reset the replica's count view to the synced global board."""
        if self._track_mux:
            grid = board.reshape(-1, self._mux_dim)
            totals = grid.sum(axis=1)
        else:
            grid = board
            totals = board
        cpu = np.minimum(1.0, totals / self._servers)
        self._router.sync(grid, cpu, now)

    def apply_events(self, events: Iterable[tuple], at_time: float) -> None:
        for event in events:
            kind = event[0]
            if kind == "fail":
                self._router.set_healthy(event[1], False)
            elif kind == "recover":
                self._router.set_healthy(event[1], True)
            elif kind == "capacity":
                station = self._stations.get(event[1])
                if station is not None:
                    station.set_capacity_factor(event[2])
            elif kind == "rate":
                self._stream.set_rate(self._base_rate * event[1], at_time=at_time)
            else:  # pragma: no cover - planner screens kinds
                raise ConfigurationError(f"unknown epoch event kind {kind!r}")

    def finish(self) -> list[dict[str, Any]]:
        return [self._stations[index].finish() for index in sorted(self._stations)]


def _run_epoch_inline(payload: Mapping[str, Any]) -> dict[str, Any]:
    """Run every shard's work in one coalesced simulation (no processes).

    One replica, all stations: the self-sync at each boundary reads the
    very counts a process fan-out would have exchanged, so the records are
    bit-identical to multiprocess mode by construction.
    """
    sim = EpochShardSim(payload)
    schedule = payload["schedule"]
    last = len(schedule) - 1
    board = np.zeros(sim.num_slots, dtype=np.float64)
    for i, (t, events) in enumerate(schedule):
        counts = sim.advance_to(t)
        if i == last:
            break
        board[sim.owned_slots] = counts
        sim.apply_sync(board, t)
        sim.apply_events(events, t)
    return {"blocks": sim.finish()}


def _epoch_worker(payload, barrier, counts_name, result_queue):  # pragma: no cover
    """Process-mode shard body (covered via multiprocess integration tests).

    Two barrier waits per epoch: write-own-slots → wait → read-all →
    wait — the second keeps a fast shard from overwriting slots a slow
    sibling has not read yet.  Any failure aborts the barrier so siblings
    fail fast instead of hanging.
    """
    shard_index = payload["shard_index"]
    counts_shm = None
    try:
        sim = EpochShardSim(payload)
        counts_shm = shared_memory.SharedMemory(name=counts_name)
        board = np.ndarray((sim.num_slots,), dtype=np.float64, buffer=counts_shm.buf)
        schedule = payload["schedule"]
        last = len(schedule) - 1
        for i, (t, events) in enumerate(schedule):
            counts = sim.advance_to(t)
            if i == last:
                break
            board[sim.owned_slots] = counts
            barrier.wait(timeout=_SYNC_TIMEOUT_S)
            synced = board.copy()
            barrier.wait(timeout=_SYNC_TIMEOUT_S)
            sim.apply_sync(synced, t)
            sim.apply_events(events, t)
        blocks = sim.finish()
        result = publish_blocks(blocks, shm_name=payload["shm_name"])
        result_queue.put((shard_index, result))
    except BaseException as exc:
        try:
            barrier.abort()
        finally:
            result_queue.put(
                (shard_index, {"error": f"{type(exc).__name__}: {exc}"})
            )
    finally:
        if counts_shm is not None:
            del board
            counts_shm.close()


def _run_epoch_processes(
    payloads: list[dict[str, Any]], num_slots: int, run_tag: str
) -> list[dict[str, Any]]:
    """Fan the shards out as barrier-connected processes and collect results."""
    ctx = get_context()
    barrier = ctx.Barrier(len(payloads))
    result_queue = ctx.Queue()
    counts_shm = shared_memory.SharedMemory(
        name=f"{run_tag}-sync", create=True, size=max(1, num_slots * 8)
    )
    np.ndarray((num_slots,), dtype=np.float64, buffer=counts_shm.buf).fill(0.0)
    procs = [
        ctx.Process(
            target=_epoch_worker,
            args=(payload, barrier, counts_shm.name, result_queue),
            daemon=True,
        )
        for payload in payloads
    ]
    results: dict[int, dict[str, Any]] = {}
    try:
        for proc in procs:
            proc.start()
        for _ in payloads:
            try:
                index, result = result_queue.get(timeout=_SYNC_TIMEOUT_S)
            except Empty:
                raise ConfigurationError(
                    "epoch shard worker did not report back (timed out)"
                ) from None
            results[index] = result
    except BaseException:
        for payload in payloads:
            _discard_shm(payload["shm_name"])
        raise
    finally:
        for proc in procs:
            proc.join(timeout=30)
        for proc in procs:
            if proc.is_alive():  # pragma: no cover - crashed-worker cleanup
                proc.terminate()
                proc.join()
        result_queue.close()
        counts_shm.close()
        try:
            counts_shm.unlink()
        except FileNotFoundError:  # pragma: no cover - racing cleanup
            pass
    errors = [
        f"shard {index}: {result['error']}"
        for index, result in sorted(results.items())
        if "error" in result
    ]
    if errors:
        for payload in payloads:
            _discard_shm(payload["shm_name"])
        raise ConfigurationError(f"epoch shard worker failed: {errors[0]}")
    return [results[i] for i in range(len(payloads))]


# ---------------------------------------------------------------------------
# schedule construction
# ---------------------------------------------------------------------------


def epoch_schedule(
    horizon_s: float,
    sync_interval_s: float,
    event_times: Sequence[float] = (),
) -> list[float]:
    """Sorted epoch boundaries: sync ticks ∪ event times ∪ {horizon}.

    Event times become boundaries so each event applies at its declared
    instant; coincident points coalesce within float tolerance.
    """
    if sync_interval_s <= 0:
        raise ConfigurationError("sync_interval_s must be positive")
    points: list[float] = [t for t in event_times if t < horizon_s - _EPS]
    tick = sync_interval_s
    k = 1
    while tick < horizon_s - _EPS:
        points.append(tick)
        k += 1
        tick = k * sync_interval_s
    points.sort()
    boundaries: list[float] = []
    for t in points:
        if not boundaries or t - boundaries[-1] > _EPS:
            boundaries.append(t)
    boundaries.append(horizon_s)
    return boundaries


def _resolve_events(
    spec: "ExperimentSpec",
    dips: Mapping[DipId, Any],
    index_of: Mapping[DipId, int],
    warmup_s: float,
) -> list[tuple[float, tuple]]:
    """Timeline events as (absolute time, primitive worker event) pairs.

    Capacity factors are resolved here in the parent — the worker never
    needs the DipServer objects — using the pool's own antagonist
    parameters for ``antagonist_phase``.
    """
    resolved: list[tuple[float, tuple]] = []
    for event in spec.timeline.ordered_events():
        t = warmup_s + event.time_s
        if event.kind == "dip_fail":
            resolved.append((t, ("fail", index_of[event.dip])))
        elif event.kind == "dip_recover":
            resolved.append((t, ("recover", index_of[event.dip])))
        elif event.kind == "capacity_ratio":
            resolved.append((t, ("capacity", index_of[event.dip], float(event.value))))
        elif event.kind == "antagonist_phase":
            loss = dips[event.dip].antagonist.per_copy_loss
            factor = (1.0 - loss) ** int(event.value)
            resolved.append((t, ("capacity", index_of[event.dip], factor)))
        elif event.kind == "arrival_scale":
            resolved.append((t, ("rate", float(event.value))))
        else:
            raise ConfigurationError(
                f"timeline kind {event.kind!r} is not epoch-shardable"
            )
    return resolved


# ---------------------------------------------------------------------------
# the runner
# ---------------------------------------------------------------------------


def run_request_epoch(
    spec: "ExperimentSpec",
    plan: "ShardPlan",
    *,
    workers: int | None = None,
    pool: Any | None = None,
    dips: Mapping[DipId, Any] | None = None,
    observers: Sequence[Any] = (),
) -> "RunResult":
    """Execute ``spec`` under the epoch-synchronized sharding model.

    ``workers`` bounds the process fan-out exactly as in the exact engine;
    ``<= 1`` runs the coalesced inline simulation, which produces the same
    bytes as the fan-out.  A ``pool`` argument is accepted for signature
    parity but only its width is used — epoch shards need mid-task
    barriers, so they run on dedicated processes, not the task pool.
    Observers receive the timeline's events and windows after the fold
    (the engine has no mid-run event loop to stream them from).
    """
    from repro.api.result import Provenance, RunResult
    from repro.api.runners import (
        now_iso,
        pool_from_spec,
        replay_controller_weights,
    )
    from repro.api.timeline import (
        ObserverSet,
        check_timeline_supported,
        windows_from_collector,
    )

    if plan.mode != "epoch":
        raise ConfigurationError(
            f"plan mode is {plan.mode!r}, not 'epoch'"
            + (f": {plan.fallback_reason}" if plan.fallback_reason else "")
        )
    sync_interval = plan.sync_interval_s or spec.sync_interval_s
    started_at, started = now_iso(), time.perf_counter()
    if dips is None:
        dips = pool_from_spec(spec.pool, spec.seed)
    dip_ids = list(dips)
    if tuple(dip_ids) != tuple(d for s in plan.dip_slices for d in s):
        raise ConfigurationError("shard plan does not cover the spec's pool")
    timeline = spec.timeline
    if not timeline.empty:
        check_timeline_supported(
            timeline,
            spec.runner,
            dips=dip_ids,
            controller_enabled=spec.controller.enabled,
        )
    total_capacity = sum(d.capacity_rps for d in dips.values())
    rate = spec.workload.load_fraction * total_capacity
    warmup = spec.workload.warmup_s
    if timeline.empty:
        duration = spec.workload.num_requests / rate
    else:
        duration = timeline.duration_s()
    horizon = warmup + duration

    weights_map = replay_controller_weights(spec)
    weights = (
        [float(weights_map.get(d, 0.0)) for d in dip_ids]
        if weights_map is not None
        else None
    )

    index_of = {dip_id: i for i, dip_id in enumerate(dip_ids)}
    rank_of = {dip_id: r for r, dip_id in enumerate(sorted(dip_ids))}
    dip_rank = [rank_of[d] for d in dip_ids]
    stations_meta = []
    for dip_id in dip_ids:
        dip = dips[dip_id]
        model = dip.latency_model
        stations_meta.append(
            (
                dip_id,
                index_of[dip_id],
                model.servers,
                model.servers / model.capacity_rps,
                dip.base_capacity_rps,
            )
        )

    events = _resolve_events(spec, dips, index_of, warmup)
    boundaries = epoch_schedule(horizon, sync_interval, [t for t, _ in events])
    schedule: list[tuple[float, tuple]] = []
    for t in boundaries:
        at_boundary = tuple(e for te, e in events if abs(te - t) <= _EPS)
        schedule.append((t, at_boundary))

    policy_name = spec.policy.name
    num_muxes = spec.policy.num_muxes
    # Per-(dip, mux) counts are only worth exchanging when a MUX layer
    # fronts a count-based inner router (each MUX tracks its own opens).
    track_mux = num_muxes > 1 and policy_name in _COUNT_POLICIES
    mux_dim = num_muxes if track_mux else 1
    num_slots = len(dip_ids) * mux_dim

    if workers is None:
        workers = min(plan.shards, os.cpu_count() or 1)
    if pool is not None:
        workers = pool.max_workers
    use_processes = workers > 1 and plan.shards > 1
    run_tag = f"repro-{os.getpid()}-{os.urandom(4).hex()}"

    base_payload = {
        "seed": spec.seed,
        "rate_rps": rate,
        "num_clients": _NUM_CLIENTS,
        "policy": policy_name,
        "num_muxes": num_muxes,
        "track_mux": track_mux,
        "weights": weights,
        "stations": stations_meta,
        "dip_rank": dip_rank,
        "queue_capacity": QUEUE_CAPACITY,
        "measure_from": warmup,
        "schedule": schedule,
    }

    if use_processes:
        payloads = []
        for shard_index, dip_slice in enumerate(plan.dip_slices):
            payload = dict(base_payload)
            payload["shard_index"] = shard_index
            payload["owned"] = [index_of[d] for d in dip_slice]
            payload["shm_name"] = f"{run_tag}-s{shard_index}"
            payloads.append(payload)
        shard_results = _run_epoch_processes(payloads, num_slots, run_tag)
    else:
        payload = dict(base_payload)
        payload["shard_index"] = 0
        payload["owned"] = list(range(len(dip_ids)))
        shard_results = [_run_epoch_inline(payload)]

    collector, counters = merge_shard_outcomes(shard_results)
    for dip_id, (busy_seconds, servers) in counters["busy"].items():
        collector.record_utilization(
            {dip_id: min(1.0, busy_seconds / (servers * horizon))}
        )

    metrics = {
        "mean_latency_ms": collector.mean_latency_ms(),
        "p50_latency_ms": collector.percentile_latency_ms(50),
        "p99_latency_ms": collector.percentile_latency_ms(99),
        "drop_fraction": (
            counters["dropped"] / counters["submitted"]
            if counters["submitted"]
            else 0.0
        ),
        "requests_submitted": float(counters["submitted"]),
        "duration_s": duration,
    }
    windows = ()
    if not timeline.empty:
        observer = ObserverSet(observers)
        for event in timeline.ordered_events():
            observer.on_event(event.time_s, event)
        windows = windows_from_collector(
            collector,
            timeline,
            observer,
            duration_s=duration,
            offset_s=warmup,
        )
        metrics["timeline_events"] = float(len(timeline.events))
        for window in reversed(windows):
            mean = window.metrics.get("mean_latency_ms")
            if mean is not None and not math.isnan(mean):
                metrics["final_latency_ms"] = mean
                break
    summaries = {
        dip: {
            "requests": float(row.requests),
            "mean_latency_ms": row.mean_latency_ms,
            "p99_latency_ms": row.p99_latency_ms,
            "cpu_utilization": row.cpu_utilization,
            "drop_fraction": row.drop_fraction,
        }
        for dip, row in collector.summaries().items()
    }
    return RunResult(
        spec=spec,
        runner=spec.runner,
        seed=spec.seed,
        metrics={k: float(v) for k, v in metrics.items()},
        dip_summaries=summaries,
        windows=tuple(windows),
        provenance=Provenance(
            started_at=started_at,
            wall_clock_s=time.perf_counter() - started,
            shards=plan.shards,
            workers=max(1, workers),
            shard_mode="epoch",
            sync_interval_s=sync_interval,
        ),
        detail={"plan": plan, "collector": collector},
    )


# ---------------------------------------------------------------------------
# staleness cross-check
# ---------------------------------------------------------------------------


def _rel_delta(a: float, b: float) -> float:
    if b == 0:
        return abs(a - b)
    return abs(a - b) / abs(b)


def staleness_crosscheck(
    spec: "ExperimentSpec",
    *,
    shards: int = 4,
    sync_intervals: Sequence[float] = (0.05, 0.25, 1.0),
    workers: int = 1,
) -> dict[str, Any]:
    """Quantify epoch-sharding error against the serial engine.

    Runs ``spec`` once serially, then once per ``sync_interval_s`` under
    the epoch engine, and reports the relative mean/p50/p99 deltas plus
    the absolute drop-fraction delta for each interval.  This is the
    request-level counterpart of ``request_vs_fluid_crosscheck``: the
    bench reports the table, CI gates on a ceiling, and the tests assert
    ``sync_interval_s → 0`` convergence.
    """
    from repro.api.runners import runner_for
    from repro.parallel.planner import plan_shards

    serial = runner_for(spec.runner).run(spec)
    rows: dict[float, dict[str, float]] = {}
    for interval in sync_intervals:
        spec_i = spec.with_overrides({"sync_interval_s": float(interval)})
        plan = plan_shards(spec_i, shards=shards)
        if plan.mode != "epoch":
            raise ConfigurationError(
                f"spec does not epoch-shard: {plan.fallback_reason}"
            )
        epoch = run_request_epoch(spec_i, plan, workers=workers)
        rows[float(interval)] = {
            "mean_latency_ms": epoch.metrics["mean_latency_ms"],
            "p50_latency_ms": epoch.metrics["p50_latency_ms"],
            "p99_latency_ms": epoch.metrics["p99_latency_ms"],
            "drop_fraction": epoch.metrics["drop_fraction"],
            "mean_rel": _rel_delta(
                epoch.metrics["mean_latency_ms"], serial.metrics["mean_latency_ms"]
            ),
            "p50_rel": _rel_delta(
                epoch.metrics["p50_latency_ms"], serial.metrics["p50_latency_ms"]
            ),
            "p99_rel": _rel_delta(
                epoch.metrics["p99_latency_ms"], serial.metrics["p99_latency_ms"]
            ),
            "drop_abs": abs(
                epoch.metrics["drop_fraction"] - serial.metrics["drop_fraction"]
            ),
        }
    return {
        "serial": {
            "mean_latency_ms": serial.metrics["mean_latency_ms"],
            "p50_latency_ms": serial.metrics["p50_latency_ms"],
            "p99_latency_ms": serial.metrics["p99_latency_ms"],
            "drop_fraction": serial.metrics["drop_fraction"],
        },
        "epoch": rows,
    }

"""The per-DIP simulation kernel behind sharded request-level runs.

Once the shard planner has established that routing is queue- and
flow-independent (see :mod:`repro.parallel.planner`), each DIP is an
M/M/c/K station fed by its own arrival sub-stream, independent of every
other DIP.  That unlocks two things the general event-loop engine cannot
do:

* **vectorized stream generation** — the VIP-wide Poisson arrival times
  and the per-request DIP assignment are drawn in bulk numpy calls, then
  sliced per DIP (``times[d::n]`` for round robin's cyclic law, boolean
  masks for the i.i.d. laws);
* **a tight per-station recursion** — FCFS service order equals arrival
  order, so :func:`simulate_station` walks one DIP's arrivals with the
  Kiefer-Wolfowitz recursion over a ``c``-entry server-free heap plus an
  in-system heap for the finite-queue drop rule.  No event heap, no
  callbacks, no per-request objects: the loop runs ~10x faster per request
  than the streaming DES, *before* shards fan out across cores.

Determinism: every stream hangs off :class:`numpy.random.SeedSequence`
children keyed by the run seed and the DIP's **global** pool index — never
its shard — so the merged run is bit-identical across repeats *and* across
shard counts for a fixed seed.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError

# SeedSequence lanes for the independent substreams of one run.  The lane
# markers are non-zero and every key ends in a non-zero word: SeedSequence
# zero-pads its entropy pool, so ``[s]``, ``[s, 0]`` and ``[s, 0, 0]`` all
# collide — a trailing-zero key would silently reuse another stream.
_ARRIVAL_LANE = 0x5EED01
_SERVICE_LANE = 0x5EED02
_FLOW_LANE = 0x5EED03
_ROUTER_LANE = 0x5EED04

_NAN = float("nan")


def arrival_seed(seed: int) -> np.random.SeedSequence:
    """Entropy for the VIP-wide arrival stream (+ per-request assignment)."""
    return np.random.SeedSequence([int(seed) & 0xFFFFFFFF, _ARRIVAL_LANE])


def service_seed(seed: int, dip_index: int) -> np.random.SeedSequence:
    """Entropy for one DIP's service draws, keyed by its *global* index."""
    return np.random.SeedSequence(
        [int(seed) & 0xFFFFFFFF, _SERVICE_LANE, int(dip_index) + 1]
    )


def flow_seed(seed: int) -> np.random.SeedSequence:
    """Entropy for the per-request flow draws (client index per arrival)."""
    return np.random.SeedSequence([int(seed) & 0xFFFFFFFF, _FLOW_LANE])


def router_seed(seed: int, slot: int, replica: int = 0) -> np.random.SeedSequence:
    """Entropy for one epoch-router's private randomness.

    ``slot`` separates policies (p2 pair sampling, DNS resolution, the
    i.i.d. pickers) and ``replica`` separates per-MUX policy instances.
    Every replica of the *same* router across shards uses the same seed —
    that is what keeps the replayed routing identical everywhere.
    """
    return np.random.SeedSequence(
        [int(seed) & 0xFFFFFFFF, _ROUTER_LANE, int(slot), int(replica) + 1]
    )


def poisson_arrival_times(
    rng: np.random.Generator, rate_rps: float, horizon_s: float
) -> np.ndarray:
    """Sorted Poisson arrival times over ``[0, horizon_s)``, drawn in bulk."""
    if rate_rps <= 0:
        raise ConfigurationError("rate_rps must be positive")
    if horizon_s <= 0:
        return np.empty(0, dtype=np.float64)
    chunks: list[np.ndarray] = []
    clock = 0.0
    remaining = horizon_s
    while True:
        # Slight overdraw so one chunk usually suffices; the loop covers the
        # Poisson tail where the draw falls short of the horizon.
        size = max(1024, int(rate_rps * remaining * 1.02) + 64)
        times = np.cumsum(rng.exponential(1.0 / rate_rps, size=size))
        times += clock
        chunks.append(times)
        clock = float(times[-1])
        if clock >= horizon_s:
            break
        remaining = horizon_s - clock
    times = np.concatenate(chunks) if len(chunks) > 1 else chunks[0]
    return times[: int(np.searchsorted(times, horizon_s, side="left"))]


def assign_dips(
    rng: np.random.Generator,
    n_arrivals: int,
    *,
    routing: str,
    probabilities: np.ndarray,
) -> np.ndarray | None:
    """Per-request DIP index for the i.i.d. routing laws (``None`` = cyclic).

    The cyclic law needs no assignment array at all — DIP ``d``'s stream is
    the slice ``times[d::n]`` — so it returns ``None`` and the caller
    slices.  The i.i.d. laws draw one uniform per request and invert the
    CDF with ``searchsorted`` (one vectorized call, not one
    ``Generator.choice`` per request).
    """
    num_dips = probabilities.shape[0]
    if routing == "cyclic":
        return None
    if routing == "iid-uniform":
        return rng.integers(num_dips, size=n_arrivals, dtype=np.int32)
    if routing == "iid-weighted":
        cdf = np.cumsum(probabilities)
        cdf[-1] = 1.0  # guard float drift so the last bucket is reachable
        draws = rng.random(n_arrivals)
        return np.searchsorted(cdf, draws, side="right").astype(np.int32)
    raise ConfigurationError(f"unknown routing law {routing!r}")


def build_dip_arrival_streams(
    *,
    seed: int,
    rate_rps: float,
    horizon_s: float,
    num_dips: int,
    routing: str,
    probabilities: np.ndarray | None = None,
    wanted: set[int] | None = None,
) -> dict[int, np.ndarray]:
    """Arrival-time arrays per global DIP index for one run.

    Every worker regenerates the *same* VIP-wide stream (same seed, same
    bulk draws) and keeps only the ``wanted`` indices — cheaper than
    shipping arrays between processes, and trivially consistent.
    """
    if probabilities is None:
        probabilities = np.full(num_dips, 1.0 / num_dips)
    else:
        probabilities = np.asarray(probabilities, dtype=np.float64)
        total = probabilities.sum()
        if total <= 0:
            probabilities = np.full(num_dips, 1.0 / num_dips)
        else:
            probabilities = probabilities / total
    rng = np.random.default_rng(arrival_seed(seed))
    times = poisson_arrival_times(rng, rate_rps, horizon_s)
    assignment = assign_dips(
        rng, times.size, routing=routing, probabilities=probabilities
    )
    indices = range(num_dips) if wanted is None else sorted(wanted)
    if assignment is None:
        return {d: times[d::num_dips] for d in indices}
    return {d: times[assignment == d] for d in indices}


@dataclass
class StationOutcome:
    """One DIP's simulated run: measured record columns plus counters.

    The columns are arrival-ordered (the order is part of the determinism
    contract — merged metrics must not depend on completion interleaving
    across shards).  ``latency_ms`` is NaN for drops, whose timestamp is
    their arrival time, exactly as the serial engine records them.
    """

    latency_ms: np.ndarray
    completed: np.ndarray
    timestamp: np.ndarray
    submitted: int
    dropped: int
    busy_seconds: float

    @property
    def completions(self) -> int:
        return self.submitted - self.dropped


def simulate_station(
    arrivals: np.ndarray,
    services: np.ndarray,
    *,
    servers: int,
    queue_capacity: int,
    measure_from: float = 0.0,
) -> StationOutcome:
    """Simulate one M/M/c/K station over its arrival sub-stream.

    ``services`` holds the (already scaled) service time of each arrival in
    order; drops consume no draw's worth of work but keep the draw aligned
    to the arrival index, matching how the stream was generated.  Requests
    arriving before ``measure_from`` shape the queue but produce no record
    (the serial engine's warm-up rule).
    """
    if servers < 1:
        raise ConfigurationError("servers must be >= 1")
    if queue_capacity < 0:
        raise ConfigurationError("queue_capacity must be >= 0")
    lat: list[float] = []
    done: list[bool] = []
    ts: list[float] = []
    lat_append = lat.append
    done_append = done.append
    ts_append = ts.append
    heappush = heapq.heappush
    heappop = heapq.heappop
    heapreplace = heapq.heapreplace
    free = [0.0] * servers
    in_system: list[float] = []
    capacity = servers + queue_capacity
    busy = 0.0
    dropped = 0
    submitted = 0
    for a, s in zip(arrivals.tolist(), services.tolist()):
        while in_system and in_system[0] <= a:
            heappop(in_system)
        measured = a >= measure_from
        if measured:
            submitted += 1
        if len(in_system) >= capacity:
            if measured:
                dropped += 1
                lat_append(_NAN)
                done_append(False)
                ts_append(a)
            continue
        f = free[0]
        start = a if a > f else f
        dep = start + s
        heapreplace(free, dep)
        heappush(in_system, dep)
        busy += s
        if measured:
            lat_append((dep - a) * 1000.0)
            done_append(True)
            ts_append(dep)
    return StationOutcome(
        latency_ms=np.asarray(lat, dtype=np.float64),
        completed=np.asarray(done, dtype=bool),
        timestamp=np.asarray(ts, dtype=np.float64),
        submitted=submitted,
        dropped=dropped,
        busy_seconds=busy,
    )

"""A persistent worker-process pool for sweeps and sharded runs.

``concurrent.futures.ProcessPoolExecutor`` is a good engine but a poor
lifecycle: the previous sweep path spun up a cold pool per call and paid a
full spec→dict→JSON round-trip per task.  :class:`WorkerPool` keeps the
interpreter pool warm across calls, serializes the sweep's *base* spec
exactly once (workers cache the parsed tree by content key and apply only
the per-task overrides), and dispatches in chunks so a thousand-spec sweep
does not queue a thousand pickles.

Scope note: the pool serves *independent* tasks (sweep points, exact
shards).  Epoch-synchronized shards need mid-task barriers, which a
futures executor cannot express, so :mod:`repro.parallel.epoch` fans out
on dedicated ``multiprocessing.Process`` workers instead and only borrows
a caller-provided pool's ``max_workers`` as its width hint.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import time
import traceback
from collections import OrderedDict
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import TYPE_CHECKING, Any, Callable, Iterable, Mapping, Sequence

from repro.exceptions import ConfigurationError

logger = logging.getLogger("repro.parallel")

if TYPE_CHECKING:  # pragma: no cover
    from repro.api.result import RunResult
    from repro.api.spec import ExperimentSpec

#: parsed base specs cached per worker process, newest last.
_BASE_SPECS: "OrderedDict[str, Any]" = OrderedDict()
_BASE_CACHE_SIZE = 8


def _fresh_stats() -> dict[str, Any]:
    """Zeroed failure accounting for one :meth:`WorkerPool.map` call."""
    return {"retries": 0, "crashes": 0, "timeouts": 0, "degraded_to": None}


def _spec_for_error_row(base: "ExperimentSpec", overrides: Mapping[str, Any]):
    """The best spec to hang a failed sweep point's row on.

    The overrides themselves may be what's invalid — fall back to the base
    spec renamed to the point's derived name so the row stays addressable.
    """
    from dataclasses import replace

    try:
        return base.with_overrides(overrides)
    except Exception:  # noqa: BLE001 - the failure is already captured
        return replace(base, name=str(overrides.get("name", base.name)))


def _sweep_worker(task: Mapping[str, Any]) -> dict[str, Any]:
    """Run one sweep point: cached base spec + overrides -> result dict.

    A failing point returns an ``error`` payload instead of raising, so
    one bad parameter combination cannot abort the whole sweep (the pool
    reserves exceptions for infrastructure failures: crashes, timeouts).
    """
    from repro.api.runners import execute
    from repro.api.spec import ExperimentSpec

    key = task["base_key"]
    base = _BASE_SPECS.get(key)
    hit = base is not None
    if base is None:
        base = ExperimentSpec.from_dict(json.loads(task["base"]))
        _BASE_SPECS[key] = base
        while len(_BASE_SPECS) > _BASE_CACHE_SIZE:
            _BASE_SPECS.popitem(last=False)
    else:
        _BASE_SPECS.move_to_end(key)
    try:
        spec = base.with_overrides(task["overrides"])
        return {"result": execute(spec).to_dict(), "base_cache_hit": hit}
    except Exception as error:  # noqa: BLE001 - captured into the row
        return {
            "error": f"{type(error).__name__}: {error}",
            "traceback": traceback.format_exc(),
            "base_cache_hit": hit,
        }


class WorkerPool:
    """A lazily-started, reusable process pool.

    The underlying executor is created on first dispatch and survives until
    :meth:`close` (or the context manager exits), so consecutive
    ``Sweep.run`` calls and sharded runs reuse warm interpreters.  With
    ``max_workers=1`` nothing is ever forked — every dispatch runs inline,
    which keeps single-spec sweeps and tests process-free.
    """

    def __init__(
        self,
        max_workers: int | None = None,
        *,
        task_timeout_s: float | None = None,
        max_task_retries: int = 2,
        retry_backoff_s: float = 0.25,
    ) -> None:
        if max_workers is not None and max_workers < 1:
            raise ConfigurationError("max_workers must be >= 1")
        if task_timeout_s is not None and task_timeout_s <= 0:
            raise ConfigurationError("task_timeout_s must be positive or None")
        if max_task_retries < 0:
            raise ConfigurationError("max_task_retries must be >= 0")
        if retry_backoff_s < 0:
            raise ConfigurationError("retry_backoff_s must be >= 0")
        self.max_workers = max_workers or os.cpu_count() or 1
        #: per-task deadline; a task still running past it is presumed hung
        #: and its workers are recycled (``None`` disables the watchdog).
        self.task_timeout_s = task_timeout_s
        #: pool re-dispatches per task before degrading to inline execution.
        self.max_task_retries = max_task_retries
        #: pause before re-dispatching after a crash or timeout (doubles
        #: per consecutive incident; deterministic, no jitter).
        self.retry_backoff_s = retry_backoff_s
        self._executor: ProcessPoolExecutor | None = None
        #: tasks dispatched over this pool's lifetime (observability).
        self.tasks_dispatched = 0
        #: failure accounting of the most recent :meth:`map` call.
        self.last_map_stats: dict[str, Any] = _fresh_stats()

    @property
    def started(self) -> bool:
        return self._executor is not None

    def _ensure(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.max_workers)
        return self._executor

    def _recycle(self) -> None:
        """Tear the broken/hung executor down; the next dispatch rebuilds."""
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    def map(
        self,
        func: Callable[[Any], Any],
        payloads: Sequence[Any],
        *,
        chunksize: int | None = None,
    ) -> list[Any]:
        """Apply ``func`` to every payload, preserving order — fault-tolerant.

        Results come back in payload order regardless of completion order.
        Inline (no processes) when the pool is single-worker or there is
        only one payload — the serial fallback the sweep engine relies on.

        Failure semantics: a worker crash (``BrokenProcessPool``) or a task
        running past ``task_timeout_s`` recycles the executor and
        re-dispatches every unfinished task, with exponential backoff and at
        most ``max_task_retries`` re-dispatches per task; a task that
        exhausts its retries runs inline in this process as a last resort.
        The accounting lands in :attr:`last_map_stats` (``retries``,
        ``crashes``, ``timeouts``, ``degraded_to``) and flows into result
        provenance.  Exceptions *raised by the task itself* propagate on
        first occurrence — workers that want per-task error capture (the
        sweep worker) catch their own.
        """
        payloads = list(payloads)
        stats = _fresh_stats()
        self.last_map_stats = stats
        self.tasks_dispatched += len(payloads)
        if not payloads:
            return []
        if self.max_workers <= 1 or len(payloads) == 1:
            return [func(payload) for payload in payloads]
        return self._map_fault_tolerant(func, payloads, stats)

    def _map_fault_tolerant(
        self,
        func: Callable[[Any], Any],
        payloads: list[Any],
        stats: dict[str, Any],
    ) -> list[Any]:
        total = len(payloads)
        results: list[Any] = [None] * total
        done = [False] * total
        attempts = [0] * total
        pending: dict[Future, int] = {}
        deadlines: dict[Future, float] = {}
        incidents = 0

        while True:
            # (Re-)dispatch every unfinished, un-pending task.
            in_flight = set(pending.values())
            for index in range(total):
                if done[index] or index in in_flight:
                    continue
                if attempts[index] > self.max_task_retries:
                    # Last resort: run where nothing can crash under us.
                    logger.warning(
                        "task %d exhausted %d pool retries; running inline",
                        index,
                        self.max_task_retries,
                    )
                    stats["degraded_to"] = "inline"
                    results[index] = func(payloads[index])
                    done[index] = True
                    continue
                attempts[index] += 1
                if attempts[index] > 1:
                    stats["retries"] += 1
                future = self._ensure().submit(func, payloads[index])
                pending[future] = index
                if self.task_timeout_s is not None:
                    deadlines[future] = time.monotonic() + self.task_timeout_s
            if not pending:
                break

            timeout = None
            if deadlines:
                timeout = max(0.0, min(deadlines.values()) - time.monotonic())
            finished, _ = wait(
                set(pending), timeout=timeout, return_when=FIRST_COMPLETED
            )

            crashed = False
            for future in finished:
                index = pending.pop(future)
                deadlines.pop(future, None)
                try:
                    results[index] = future.result()
                    done[index] = True
                except BrokenProcessPool:
                    # The pool died; every sibling future is broken too.
                    crashed = True
                except Exception:
                    # A genuine task error: not an infrastructure failure.
                    raise
            if crashed:
                stats["crashes"] += 1
                incidents += 1
                logger.warning(
                    "worker pool crashed; recycling and re-dispatching "
                    "%d unfinished task(s)",
                    sum(1 for flag in done if not flag),
                )
                self._recycle()
                pending.clear()
                deadlines.clear()
                self._backoff(incidents)
            elif not finished and deadlines:
                now = time.monotonic()
                expired = [f for f, d in deadlines.items() if d <= now]
                if expired:
                    stats["timeouts"] += len(expired)
                    incidents += 1
                    logger.warning(
                        "%d task(s) exceeded task_timeout_s=%.3g; "
                        "recycling hung workers",
                        len(expired),
                        self.task_timeout_s,
                    )
                    # A hung worker cannot be killed selectively; recycle
                    # the executor and re-dispatch everything unfinished.
                    self._recycle()
                    pending.clear()
                    deadlines.clear()
                    self._backoff(incidents)
        return results

    def _backoff(self, incidents: int) -> None:
        if self.retry_backoff_s > 0:
            time.sleep(self.retry_backoff_s * 2 ** (incidents - 1))

    def run_specs(
        self,
        base: "ExperimentSpec",
        overrides: Iterable[Mapping[str, Any]],
    ) -> "list[RunResult]":
        """Execute ``base`` once per overrides dict (the sweep fast path).

        The base spec is serialized a single time; each task carries only
        its overrides plus the base's content key, and workers re-parse the
        base at most once per process.

        A point that raises inside a worker comes back as an error row
        (:meth:`RunResult.error_result`) instead of aborting the batch;
        pool-level failure accounting (task retries after crashes or
        timeouts, inline degradation, failed-run count) is stamped into
        every returned result's provenance.
        """
        from dataclasses import replace

        from repro.api.result import RunResult

        overrides = [dict(o) for o in overrides]
        base_json = json.dumps(base.to_dict(), sort_keys=True)
        base_key = hashlib.sha256(base_json.encode("utf-8")).hexdigest()
        tasks = [
            {"base": base_json, "base_key": base_key, "overrides": o}
            for o in overrides
        ]
        raw = self.map(_sweep_worker, tasks)
        results = []
        for item, point in zip(raw, overrides):
            if "error" in item:
                results.append(
                    RunResult.error_result(
                        _spec_for_error_row(base, point), item["error"]
                    )
                )
            else:
                results.append(RunResult.from_dict(item["result"]))
        stats = self.last_map_stats
        failed = sum(1 for result in results if result.error is not None)
        if failed or stats["retries"] or stats["degraded_to"]:
            results = [
                replace(
                    result,
                    provenance=replace(
                        result.provenance,
                        retries=stats["retries"],
                        degraded_to=stats["degraded_to"],
                        failed_runs=failed,
                    ),
                )
                for result in results
            ]
        return results

    def close(self) -> None:
        """Shut the executor down (idempotent); the pool can be restarted."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

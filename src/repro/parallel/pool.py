"""A persistent worker-process pool for sweeps and sharded runs.

``concurrent.futures.ProcessPoolExecutor`` is a good engine but a poor
lifecycle: the previous sweep path spun up a cold pool per call and paid a
full spec→dict→JSON round-trip per task.  :class:`WorkerPool` keeps the
interpreter pool warm across calls, serializes the sweep's *base* spec
exactly once (workers cache the parsed tree by content key and apply only
the per-task overrides), and dispatches in chunks so a thousand-spec sweep
does not queue a thousand pickles.

Scope note: the pool serves *independent* tasks (sweep points, exact
shards).  Epoch-synchronized shards need mid-task barriers, which a
futures executor cannot express, so :mod:`repro.parallel.epoch` fans out
on dedicated ``multiprocessing.Process`` workers instead and only borrows
a caller-provided pool's ``max_workers`` as its width hint.
"""

from __future__ import annotations

import hashlib
import json
import os
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from typing import TYPE_CHECKING, Any, Callable, Iterable, Mapping, Sequence

from repro.exceptions import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.api.result import RunResult
    from repro.api.spec import ExperimentSpec

#: parsed base specs cached per worker process, newest last.
_BASE_SPECS: "OrderedDict[str, Any]" = OrderedDict()
_BASE_CACHE_SIZE = 8


def _sweep_worker(task: Mapping[str, Any]) -> dict[str, Any]:
    """Run one sweep point: cached base spec + overrides -> result dict."""
    from repro.api.runners import execute
    from repro.api.spec import ExperimentSpec

    key = task["base_key"]
    base = _BASE_SPECS.get(key)
    hit = base is not None
    if base is None:
        base = ExperimentSpec.from_dict(json.loads(task["base"]))
        _BASE_SPECS[key] = base
        while len(_BASE_SPECS) > _BASE_CACHE_SIZE:
            _BASE_SPECS.popitem(last=False)
    else:
        _BASE_SPECS.move_to_end(key)
    spec = base.with_overrides(task["overrides"])
    return {"result": execute(spec).to_dict(), "base_cache_hit": hit}


class WorkerPool:
    """A lazily-started, reusable process pool.

    The underlying executor is created on first dispatch and survives until
    :meth:`close` (or the context manager exits), so consecutive
    ``Sweep.run`` calls and sharded runs reuse warm interpreters.  With
    ``max_workers=1`` nothing is ever forked — every dispatch runs inline,
    which keeps single-spec sweeps and tests process-free.
    """

    def __init__(self, max_workers: int | None = None) -> None:
        if max_workers is not None and max_workers < 1:
            raise ConfigurationError("max_workers must be >= 1")
        self.max_workers = max_workers or os.cpu_count() or 1
        self._executor: ProcessPoolExecutor | None = None
        #: tasks dispatched over this pool's lifetime (observability).
        self.tasks_dispatched = 0

    @property
    def started(self) -> bool:
        return self._executor is not None

    def _ensure(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.max_workers)
        return self._executor

    def map(
        self,
        func: Callable[[Any], Any],
        payloads: Sequence[Any],
        *,
        chunksize: int | None = None,
    ) -> list[Any]:
        """Apply ``func`` to every payload, preserving order.

        Results come back in payload order regardless of completion order.
        Inline (no processes) when the pool is single-worker or there is
        only one payload — the serial fallback the sweep engine relies on.
        """
        payloads = list(payloads)
        self.tasks_dispatched += len(payloads)
        if not payloads:
            return []
        if self.max_workers <= 1 or len(payloads) == 1:
            return [func(payload) for payload in payloads]
        if chunksize is None:
            chunksize = max(1, -(-len(payloads) // (self.max_workers * 4)))
        executor = self._ensure()
        return list(executor.map(func, payloads, chunksize=chunksize))

    def run_specs(
        self,
        base: "ExperimentSpec",
        overrides: Iterable[Mapping[str, Any]],
    ) -> "list[RunResult]":
        """Execute ``base`` once per overrides dict (the sweep fast path).

        The base spec is serialized a single time; each task carries only
        its overrides plus the base's content key, and workers re-parse the
        base at most once per process.
        """
        from repro.api.result import RunResult

        base_json = json.dumps(base.to_dict(), sort_keys=True)
        base_key = hashlib.sha256(base_json.encode("utf-8")).hexdigest()
        tasks = [
            {"base": base_json, "base_key": base_key, "overrides": dict(o)}
            for o in overrides
        ]
        raw = self.map(_sweep_worker, tasks)
        return [RunResult.from_dict(item["result"]) for item in raw]

    def close(self) -> None:
        """Shut the executor down (idempotent); the pool can be restarted."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

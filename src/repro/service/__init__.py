"""Live control-plane service mode: ``python -m repro serve``.

The service package turns a batch :class:`~repro.api.spec.ExperimentSpec`
into a long-running daemon: the same converged substrate the batch runners
execute, driven window by window on an asyncio control loop, observable
over REST and WebSocket, and mutable at run time — with every live session
exportable back into a spec whose batch re-run reproduces it bit-for-bit
per seed (see :mod:`repro.service.session`).

Stdlib-only by design: the HTTP/1.1 and WebSocket framing is hand-rolled
in :mod:`repro.service.http`, so the daemon adds zero dependencies.
"""

from repro.service.session import LiveSession, SessionConflict
from repro.service.server import ServiceServer, serve
from repro.service.stepper import (
    SERVE_RUNNERS,
    LiveSubstrate,
    build_live_substrate,
    mixture_percentile,
)

__all__ = [
    "SERVE_RUNNERS",
    "LiveSession",
    "LiveSubstrate",
    "ServiceServer",
    "SessionConflict",
    "build_live_substrate",
    "mixture_percentile",
    "serve",
]

"""The asyncio daemon: REST + WebSocket front-end over a :class:`LiveSession`.

One process, one event loop, one session.  The control loop executes one
substrate window per wall-clock-scaled tick (``window_s / time_scale``
seconds of wall time per window; ``--accelerated`` drops the pacing and
runs windows back to back) and pushes each completed
:class:`~repro.api.result.RunWindow` to every ``/stream`` WebSocket
subscriber.  HTTP handlers run on the same loop, so mutations interleave
with ticks deterministically — a ``POST /events`` lands either wholly
before or wholly after a window, never inside one.

Routes:

* ``GET /healthz`` — liveness + session identity and clock;
* ``GET /vips`` — live VIPs and whether each is KnapsackLB-controlled;
* ``GET /vip/{name}/stats`` — the per-window stats ring (rate, share,
  mean/p50/p99 latency, per-DIP share) for one VIP;
* ``GET /timeline`` — applied and pending events against the session clock;
* ``GET /session`` — the frozen replay artifact (spec + windows + metrics
  + mutation journal); 409 while un-exportable (no windows yet / mid-drain);
* ``POST /events`` — one EventSpec JSON document; 422 with the validator's
  dotted-path message on bad bodies, 400 on non-JSON;
* ``POST /chaos`` — arm a live chaos drill (seeded schedule, see
  :meth:`LiveSession.submit_chaos`);
* ``POST /weights`` — queue a live weight override that lands at the next
  window boundary (``{"weights": {...}, "vip": ...}``; validated like
  ``POST /events``, journaled; the session stops being exportable —
  overrides have no timeline-event form, see
  :meth:`LiveSession.submit_weights`);
* ``GET /stream`` — WebSocket; each completed window is pushed as one JSON
  text frame ``{"type": "window", ...RunWindow...}``.

SIGTERM/SIGINT close every stream with a proper close frame and stop the
loop; the process exits 0 — the shape a supervisor expects.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import signal
from typing import Any

from repro.exceptions import ConfigurationError
from repro.service.http import (
    WS_OP_CLOSE,
    WS_OP_PING,
    HttpProtocolError,
    HttpRequest,
    json_response,
    read_request,
    ws_close_frame,
    ws_handshake_response,
    ws_pong_frame,
    ws_read_frame,
    ws_text_frame,
)
from repro.service.session import LiveSession, SessionConflict


class ServiceServer:
    """Serve one :class:`LiveSession` over HTTP/WS until signalled."""

    def __init__(
        self,
        session: LiveSession,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        time_scale: float = 1.0,
        accelerated: bool = False,
    ) -> None:
        if time_scale <= 0:
            raise ConfigurationError("serve time_scale must be positive")
        self.session = session
        self.host = host
        self.port = port
        self.time_scale = time_scale
        self.accelerated = accelerated
        self._server: asyncio.AbstractServer | None = None
        self._stopping = asyncio.Event()
        self._streams: set[asyncio.StreamWriter] = set()

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> None:
        """Bind the listener and resolve the effective port (``--port 0``)."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        sockets = self._server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]
        print(
            f"serving {self.session.spec.name!r} "
            f"({self.session.spec.runner}) on http://{self.host}:{self.port}",
            flush=True,
        )

    def request_stop(self) -> None:
        self._stopping.set()

    async def run(self) -> None:
        """Start, install signal handlers, drive the control loop, shut down."""
        if self._server is None:
            await self.start()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            with contextlib.suppress(NotImplementedError):
                loop.add_signal_handler(signum, self.request_stop)
        try:
            await self._control_loop()
        finally:
            await self._shutdown()

    async def _control_loop(self) -> None:
        loop = asyncio.get_running_loop()
        period = self.session.stepper.window_s / self.time_scale
        next_tick = loop.time() + (0.0 if self.accelerated else period)
        while not self._stopping.is_set():
            if not self.accelerated:
                delay = next_tick - loop.time()
                if delay > 0:
                    with contextlib.suppress(asyncio.TimeoutError):
                        await asyncio.wait_for(
                            self._stopping.wait(), timeout=delay
                        )
                    if self._stopping.is_set():
                        break
                next_tick += period
            window = self.session.tick()
            self._broadcast(
                {"type": "window", **window.to_dict()}
            )
            if self.accelerated:
                # Yield so HTTP handlers interleave between windows.
                await asyncio.sleep(0)

    async def _shutdown(self) -> None:
        for writer in list(self._streams):
            with contextlib.suppress(Exception):
                writer.write(ws_close_frame())
                await writer.drain()
                writer.close()
        self._streams.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    # -- streaming -------------------------------------------------------------

    def _broadcast(self, payload: dict[str, Any]) -> None:
        if not self._streams:
            return
        frame = ws_text_frame(json.dumps(payload, sort_keys=True))
        dead = []
        for writer in self._streams:
            try:
                writer.write(frame)
            except Exception:
                dead.append(writer)
        for writer in dead:
            self._streams.discard(writer)

    async def _serve_stream(
        self,
        request: HttpRequest,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        key = request.header("sec-websocket-key")
        if not key:
            writer.write(
                json_response(
                    426, {"error": "GET /stream requires a WebSocket upgrade"}
                )
            )
            return
        writer.write(ws_handshake_response(key))
        await writer.drain()
        self._streams.add(writer)
        try:
            while True:
                frame = await ws_read_frame(reader)
                if frame is None or frame[0] == WS_OP_CLOSE:
                    break
                if frame[0] == WS_OP_PING:
                    writer.write(ws_pong_frame(frame[1]))
                    await writer.drain()
        finally:
            self._streams.discard(writer)

    # -- routing ---------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                request = await read_request(reader)
            except HttpProtocolError as error:
                writer.write(json_response(400, {"error": str(error)}))
                return
            if request is None:
                return
            if request.path == "/stream" and request.method == "GET":
                if request.wants_websocket():
                    await self._serve_stream(request, reader, writer)
                else:
                    writer.write(
                        json_response(
                            426,
                            {
                                "error": "GET /stream requires a WebSocket "
                                "upgrade (Connection: Upgrade)"
                            },
                        )
                    )
                return
            writer.write(self._dispatch(request))
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            with contextlib.suppress(Exception):
                await writer.drain()
                writer.close()
                await writer.wait_closed()

    def _dispatch(self, request: HttpRequest) -> bytes:
        try:
            return self._route(request)
        except HttpProtocolError as error:
            return json_response(400, {"error": str(error)})
        except ConfigurationError as error:
            # The same validator text ``repro validate`` prints, as 422.
            return json_response(422, {"error": str(error)})
        except SessionConflict as error:
            return json_response(409, {"error": str(error)})
        except Exception as error:  # pragma: no cover - defensive
            return json_response(
                500, {"error": f"{type(error).__name__}: {error}"}
            )

    def _route(self, request: HttpRequest) -> bytes:
        session = self.session
        method, path = request.method, request.path.rstrip("/") or "/"
        if path == "/healthz":
            if method != "GET":
                return self._method_not_allowed("GET")
            return json_response(200, session.healthz())
        if path == "/vips":
            if method != "GET":
                return self._method_not_allowed("GET")
            return json_response(200, session.vips())
        if path.startswith("/vip/") and path.endswith("/stats"):
            if method != "GET":
                return self._method_not_allowed("GET")
            vip = path[len("/vip/") : -len("/stats")]
            try:
                return json_response(200, session.vip_stats(vip))
            except KeyError:
                known = ", ".join(session.substrate.vip_ids())
                return json_response(
                    404,
                    {"error": f"unknown VIP {vip!r}; live VIPs: {known}"},
                )
        if path == "/timeline":
            if method != "GET":
                return self._method_not_allowed("GET")
            return json_response(200, session.timeline_view())
        if path == "/session":
            if method != "GET":
                return self._method_not_allowed("GET")
            return json_response(200, session.export())
        if path == "/events":
            if method != "POST":
                return self._method_not_allowed("POST")
            return json_response(200, session.submit_event(request.json()))
        if path == "/chaos":
            if method != "POST":
                return self._method_not_allowed("POST")
            return json_response(200, session.submit_chaos(request.json()))
        if path == "/weights":
            if method != "POST":
                return self._method_not_allowed("POST")
            return json_response(200, session.submit_weights(request.json()))
        return json_response(
            404,
            {
                "error": f"no route for {method} {request.path}",
                "routes": [
                    "GET /healthz",
                    "GET /vips",
                    "GET /vip/{name}/stats",
                    "GET /timeline",
                    "GET /session",
                    "POST /events",
                    "POST /chaos",
                    "POST /weights",
                    "WS  /stream",
                ],
            },
        )

    @staticmethod
    def _method_not_allowed(allowed: str) -> bytes:
        return json_response(
            405,
            {"error": f"method not allowed; use {allowed}"},
        )


def serve(
    session: LiveSession,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    time_scale: float = 1.0,
    accelerated: bool = False,
) -> None:
    """Blocking entry point: run the daemon until SIGTERM/SIGINT."""
    server = ServiceServer(
        session,
        host=host,
        port=port,
        time_scale=time_scale,
        accelerated=accelerated,
    )
    asyncio.run(server.run())

"""Minimal HTTP/1.1 and WebSocket (RFC 6455) framing over asyncio streams.

The ``repro serve`` daemon is stdlib-only, so instead of pulling in an HTTP
framework this module implements exactly the slice of the protocols the
control plane needs:

* request parsing — request line, headers, ``Content-Length`` bodies (no
  chunked uploads: control-plane mutations are small JSON documents);
* response writing — status line + headers + body, ``Connection: close``
  per response (one request per connection keeps the daemon trivial to
  reason about; the control plane is low-QPS by construction);
* the WebSocket server handshake (``Sec-WebSocket-Accept``) and framing:
  unmasked server→client text frames, client frame decoding (which the RFC
  requires to be masked), close/ping/pong control frames.

Everything here is transport only — no routing, no application logic.
"""

from __future__ import annotations

import asyncio
import base64
import hashlib
import json
import struct
from dataclasses import dataclass, field
from typing import Any, Mapping
from urllib.parse import parse_qs, unquote, urlsplit

#: Largest accepted request head (request line + headers) and body.
MAX_HEAD_BYTES = 16 * 1024
MAX_BODY_BYTES = 1024 * 1024

#: Status phrases for the codes the service actually emits.
STATUS_PHRASES = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    426: "Upgrade Required",
    500: "Internal Server Error",
}

#: RFC 6455 handshake GUID.
_WS_GUID = b"258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

#: WebSocket opcodes.
WS_OP_TEXT = 0x1
WS_OP_CLOSE = 0x8
WS_OP_PING = 0x9
WS_OP_PONG = 0xA


class HttpProtocolError(Exception):
    """The peer sent something that is not valid HTTP for this server."""


@dataclass
class HttpRequest:
    """One parsed request: method, split target, lowercase headers, body."""

    method: str
    path: str
    query: dict[str, list[str]] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> Any:
        """The body parsed as JSON; raises :class:`HttpProtocolError`."""
        try:
            return json.loads(self.body.decode("utf-8") or "null")
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise HttpProtocolError(f"request body is not valid JSON: {error}")

    def header(self, name: str, default: str = "") -> str:
        return self.headers.get(name.lower(), default)

    def wants_websocket(self) -> bool:
        return (
            "websocket" in self.header("upgrade").lower()
            and "upgrade" in self.header("connection").lower()
        )


async def read_request(reader: asyncio.StreamReader) -> HttpRequest | None:
    """Parse one request from the stream; ``None`` on a clean EOF."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise HttpProtocolError("connection closed mid-request") from None
    except asyncio.LimitOverrunError:
        raise HttpProtocolError("request head too large") from None
    if len(head) > MAX_HEAD_BYTES:
        raise HttpProtocolError("request head too large")
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpProtocolError(f"malformed request line: {lines[0]!r}")
    method, target = parts[0].upper(), parts[1]
    split = urlsplit(target)
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, colon, value = line.partition(":")
        if not colon:
            raise HttpProtocolError(f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()
    body = b""
    length = headers.get("content-length")
    if length is not None:
        try:
            size = int(length)
        except ValueError:
            raise HttpProtocolError(
                f"malformed Content-Length: {length!r}"
            ) from None
        if size < 0 or size > MAX_BODY_BYTES:
            raise HttpProtocolError("request body too large")
        body = await reader.readexactly(size)
    return HttpRequest(
        method=method,
        path=unquote(split.path) or "/",
        query=parse_qs(split.query),
        headers=headers,
        body=body,
    )


def response(
    status: int,
    body: bytes = b"",
    *,
    content_type: str = "application/json",
    extra_headers: Mapping[str, str] | None = None,
) -> bytes:
    """Serialize one complete ``Connection: close`` HTTP/1.1 response."""
    phrase = STATUS_PHRASES.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {phrase}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    head = "\r\n".join(lines) + "\r\n\r\n"
    return head.encode("latin-1") + body


def json_response(status: int, payload: Any) -> bytes:
    """A JSON document as a complete response (sorted keys, trailing \\n)."""
    body = (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode()
    return response(status, body)


# ---------------------------------------------------------------------------
# WebSocket framing
# ---------------------------------------------------------------------------


def websocket_accept(key: str) -> str:
    """The ``Sec-WebSocket-Accept`` value for a client's handshake key."""
    digest = hashlib.sha1(key.encode("latin-1") + _WS_GUID).digest()
    return base64.b64encode(digest).decode("latin-1")


def ws_handshake_response(key: str) -> bytes:
    """The 101 Switching Protocols response completing the WS handshake."""
    return (
        "HTTP/1.1 101 Switching Protocols\r\n"
        "Upgrade: websocket\r\n"
        "Connection: Upgrade\r\n"
        f"Sec-WebSocket-Accept: {websocket_accept(key)}\r\n"
        "\r\n"
    ).encode("latin-1")


def _ws_frame(opcode: int, payload: bytes) -> bytes:
    """One unmasked (server→client) frame with FIN set."""
    head = bytes([0x80 | opcode])
    length = len(payload)
    if length < 126:
        head += bytes([length])
    elif length < 1 << 16:
        head += bytes([126]) + struct.pack(">H", length)
    else:
        head += bytes([127]) + struct.pack(">Q", length)
    return head + payload


def ws_text_frame(text: str) -> bytes:
    return _ws_frame(WS_OP_TEXT, text.encode("utf-8"))


def ws_close_frame(code: int = 1000) -> bytes:
    return _ws_frame(WS_OP_CLOSE, struct.pack(">H", code))


def ws_pong_frame(payload: bytes = b"") -> bytes:
    return _ws_frame(WS_OP_PONG, payload)


async def ws_read_frame(
    reader: asyncio.StreamReader,
) -> tuple[int, bytes] | None:
    """Read one client frame, unmasking it; ``None`` on EOF.

    Fragmented messages are not reassembled — control-plane clients send
    only short control frames (close/ping) and the server never expects
    application data from them.
    """
    try:
        head = await reader.readexactly(2)
    except (asyncio.IncompleteReadError, ConnectionError):
        return None
    opcode = head[0] & 0x0F
    masked = bool(head[1] & 0x80)
    length = head[1] & 0x7F
    if length == 126:
        length = struct.unpack(">H", await reader.readexactly(2))[0]
    elif length == 127:
        length = struct.unpack(">Q", await reader.readexactly(8))[0]
    if length > MAX_BODY_BYTES:
        raise HttpProtocolError("websocket frame too large")
    mask = await reader.readexactly(4) if masked else b""
    payload = await reader.readexactly(length) if length else b""
    if masked:
        payload = bytes(
            byte ^ mask[i % 4] for i, byte in enumerate(payload)
        )
    return opcode, payload

"""Build a live, resumable substrate for the ``repro serve`` daemon.

The daemon drives the same analytic substrates the batch runners execute —
a :class:`~repro.sim.fluid.FluidCluster` or a multi-VIP
:class:`~repro.sim.fleet.Fleet` — through the shared
:class:`~repro.api.timeline.TimelineStepper`.  This module is the glue: it
converges the substrate exactly the way the batch runner would
(:func:`~repro.api.runners.prepare_fluid` / ``prepare_fleet``), wraps it in
a stepper with an unbounded horizon, and exposes the per-VIP telemetry
closures the REST endpoints read (rates, shares, analytic latency
percentiles).

Percentiles on an analytic substrate are necessarily a model: per-DIP
sojourn times are approximated as exponential with the DIP's M/M/c mean
(exact for M/M/1, close for loaded M/M/c), and a VIP's latency distribution
is the rate-weighted mixture across its DIPs.  ``p50``/``p99`` are the
quantiles of that mixture, solved by bisection.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Mapping

from repro.api.runners import prepare_fleet, prepare_fluid
from repro.api.spec import ExperimentSpec
from repro.api.timeline import (
    Observer,
    TimelineStepper,
    fleet_timeline_stepper,
    fluid_timeline_stepper,
)
from repro.exceptions import ConfigurationError

#: Substrates the daemon can drive live.
SERVE_RUNNERS = ("fluid", "fleet")


def mixture_percentile(
    shares: Mapping[str, float],
    means_ms: Mapping[str, float],
    quantile: float,
) -> float:
    """The ``quantile`` of an exponential mixture across DIPs, in ms.

    ``shares`` weight each DIP's exponential (mean ``means_ms[dip]``)
    component; zero-share and non-finite-mean DIPs are excluded.  Solved by
    bisection on the mixture CDF to ~1e-6 relative precision.
    """
    live = [
        (share, means_ms[dip])
        for dip, share in shares.items()
        if share > 0 and math.isfinite(means_ms.get(dip, float("inf")))
    ]
    total = sum(share for share, _ in live)
    if total <= 0 or not 0 < quantile < 1:
        return float("nan")
    live = [(share / total, mean) for share, mean in live]

    def cdf(t: float) -> float:
        return sum(
            share * (1.0 - math.exp(-t / mean)) if mean > 0 else share
            for share, mean in live
        )

    hi = max(mean for _, mean in live) or 1.0
    # -ln(1-q) upper-bounds the quantile of the slowest component alone.
    hi *= max(1.0, -math.log1p(-quantile)) * 2.0
    while cdf(hi) < quantile:
        hi *= 2.0
    lo = 0.0
    for _ in range(60):
        mid = 0.5 * (lo + hi)
        if cdf(mid) < quantile:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


@dataclass
class LiveSubstrate:
    """A converged substrate wrapped for live, window-at-a-time driving."""

    spec: ExperimentSpec
    stepper: TimelineStepper
    #: metrics from the pre-timeline setup (convergence objective etc.).
    setup_metrics: dict[str, float]
    #: DIPs of the built pool, in pool order.
    dip_ids: tuple[str, ...]
    #: VIPs currently live on the substrate.
    vip_ids: Callable[[], tuple[str, ...]]
    #: VIPs currently under KnapsackLB control (== vip_ids when no plane).
    controlled_vip_ids: Callable[[], tuple[str, ...]]
    #: per-VIP stats row at the current instant (see :func:`_fleet_vip_rows`).
    vip_rows: Callable[[], dict[str, dict[str, float]]]


def _vip_row(
    rates: Mapping[str, float],
    latency_ms: Mapping[str, float],
    *,
    fleet_rate: float,
) -> dict[str, float | dict[str, float]]:
    """One VIP's stats row from its per-DIP rates and the DIP latencies."""
    live = {
        dip: rate
        for dip, rate in rates.items()
        if rate > 0 and math.isfinite(latency_ms.get(dip, float("inf")))
    }
    rate = sum(rates.values())
    live_rate = sum(live.values())
    mean = (
        sum(r * latency_ms[d] for d, r in live.items()) / live_rate
        if live_rate > 0
        else float("nan")
    )
    return {
        "rate_rps": rate,
        "share": rate / fleet_rate if fleet_rate > 0 else 0.0,
        "mean_latency_ms": mean,
        "p50_latency_ms": mixture_percentile(live, latency_ms, 0.50),
        "p99_latency_ms": mixture_percentile(live, latency_ms, 0.99),
        "dip_share": {
            dip: r / rate for dip, r in rates.items() if rate > 0 and r > 0
        },
    }


def build_live_substrate(
    spec: ExperimentSpec, observer: Observer
) -> LiveSubstrate:
    """Converge the spec's substrate and wrap it in an unbounded stepper.

    Only the analytic substrates can serve live traffic (the request
    engine's run is a closed simulation, not a steppable steady state), and
    probe-based health detection precompiles its action schedule from the
    full timeline — incompatible with live injection — so both are rejected
    here with the reason named.
    """
    if spec.runner not in SERVE_RUNNERS:
        kinds = ", ".join(SERVE_RUNNERS)
        raise ConfigurationError(
            f"repro serve drives the analytic substrates (runner must be "
            f"one of: {kinds}); got {spec.runner!r}"
        )
    if spec.health.enabled:
        raise ConfigurationError(
            "repro serve does not support health.enabled: probe-based "
            "detection precompiles its schedule from the full timeline, "
            "which live mutations would invalidate (set health.enabled = "
            "false to serve)"
        )
    if spec.runner == "fluid":
        cluster, controller, setup_metrics, _ = prepare_fluid(spec)
        stepper = fluid_timeline_stepper(
            cluster,
            spec.timeline,
            observer,
            controller=controller,
            seed=spec.seed,
        )

        def vip_rows() -> dict[str, dict[str, float]]:
            state = cluster.state()
            return {
                "vip": _vip_row(
                    state.rates_rps,
                    state.mean_latency_ms,
                    fleet_rate=cluster.total_rate_rps,
                )
            }

        return LiveSubstrate(
            spec=spec,
            stepper=stepper,
            setup_metrics=setup_metrics,
            dip_ids=tuple(cluster.dips),
            vip_ids=lambda: ("vip",),
            controlled_vip_ids=(
                (lambda: ("vip",)) if controller is not None else tuple
            ),
            vip_rows=vip_rows,
        )

    fleet, plane, setup_metrics, _ = prepare_fleet(spec)
    stepper = fleet_timeline_stepper(
        fleet, spec.timeline, observer, plane=plane, seed=spec.seed
    )

    def fleet_vip_rows() -> dict[str, dict[str, float]]:
        state = fleet.state()
        fleet_rate = sum(
            sum(rates.values()) for rates in state.per_vip_rates.values()
        )
        return {
            vip_id: _vip_row(
                state.per_vip_rates.get(vip_id, {}),
                state.mean_latency_ms,
                fleet_rate=fleet_rate,
            )
            for vip_id in fleet.vips
        }

    return LiveSubstrate(
        spec=spec,
        stepper=stepper,
        setup_metrics=setup_metrics,
        dip_ids=tuple(fleet.dips),
        vip_ids=lambda: tuple(fleet.vips),
        controlled_vip_ids=(
            (lambda: tuple(plane.controllers)) if plane is not None else tuple
        ),
        vip_rows=fleet_vip_rows,
    )

"""The live experiment session: state, mutations, journal, export.

A :class:`LiveSession` owns one running experiment end to end: the
converged substrate wrapped in a :class:`~repro.api.timeline.TimelineStepper`
(via :func:`~repro.service.stepper.build_live_substrate`), the telemetry
observers, the journal of operator mutations, and the export path that
freezes the whole session back into a batch-runnable
:class:`~repro.api.spec.ExperimentSpec`.

Everything here is synchronous and event-loop-agnostic — the asyncio
server in :mod:`repro.service.server` calls :meth:`tick` once per
wall-clock-scaled window and routes HTTP bodies into :meth:`submit_event` /
:meth:`submit_chaos`.  Because ticks and mutations both run on the server's
single loop, no locking is needed.

**The replay guarantee.**  A session exported after *n* windows yields a
spec whose timeline carries exactly the applied events (declared and
live-injected alike, in application order, at their exact applied times)
over ``horizon_s`` equal to the session clock.  The batch runners execute
that spec through the *same* :class:`TimelineStepper` windowing loop from
the *same* converged starting state (``prepare_fluid``/``prepare_fleet``,
with live-deferred VIPs recorded in ``fleet.deferred_vips``), so the
replayed run's window rows — and the :func:`~repro.api.result.timeline_metrics`
folded from them — are bit-identical to the live session's, per seed.
"""

from __future__ import annotations

from collections import deque
from dataclasses import replace
from typing import Any, Mapping

from repro.api.result import RunWindow, timeline_metrics
from repro.api.runners import expand_spec_chaos
from repro.api.spec import (
    ChaosSpec,
    ExperimentSpec,
    EventSpec,
    TimelineSpec,
    expand_chaos_events,
)
from repro.api.timeline import ObserverSet, WindowedMetricsObserver
from repro.core.config import dataclass_from_dict
from repro.exceptions import ConfigurationError
from repro.service.stepper import LiveSubstrate, build_live_substrate

#: window rows kept for the /vip/{name}/stats endpoint (the session also
#: keeps the complete series separately — export needs every window).
DEFAULT_STATS_WINDOWS = 256


class SessionConflict(Exception):
    """The request is valid but the session cannot honor it *right now*
    (HTTP 409): e.g. exporting before the first window has elapsed, or
    while a graceful drain is still in progress."""


class LiveSession:
    """One live experiment: substrate + journal + bounded telemetry."""

    def __init__(
        self,
        spec: ExperimentSpec,
        *,
        stats_windows: int = DEFAULT_STATS_WINDOWS,
    ) -> None:
        #: the boot spec with chaos pre-expanded into plain events (so the
        #: live schedule and any export see an ordinary timeline).
        self.spec = expand_spec_chaos(spec)
        #: complete record — export folds these into the replay artifact.
        self._recorder = WindowedMetricsObserver()
        self.substrate: LiveSubstrate = build_live_substrate(
            self.spec, ObserverSet([self._recorder])
        )
        self.stepper = self.substrate.stepper
        # VIPs outside the control plane at boot; exported as
        # fleet.deferred_vips so a replay defers exactly the same set.
        self._boot_deferred = tuple(
            sorted(
                {
                    event.vip
                    for event in self.spec.timeline.events
                    if event.kind == "vip_onboard"
                }
                | set(self.spec.fleet.deferred_vips)
            )
        )
        #: per-window per-VIP stats ring for the REST stats endpoint.
        self._vip_history: "deque[dict[str, Any]]" = deque(maxlen=stats_windows)
        #: operator mutations in arrival order (journal; exported verbatim).
        self.journal: list[dict[str, Any]] = []
        #: live weight overrides applied so far; a non-zero count blocks
        #: spec export (overrides are not expressible as timeline events,
        #: so an exported spec could not replay them — see submit_weights).
        self._weight_overrides = 0

    # -- the control loop ------------------------------------------------------

    def tick(self) -> RunWindow:
        """Execute one window (the daemon never runs out of horizon)."""
        self.stepper.extend_horizon(self.stepper.clock + self.stepper.window_s)
        window = self.stepper.step()
        assert window is not None  # horizon was just extended
        self._vip_history.append(
            {
                "start_s": window.start_s,
                "end_s": window.end_s,
                "vips": self.substrate.vip_rows(),
            }
        )
        return window

    # -- mutations -------------------------------------------------------------

    def _next_boundary(self) -> float:
        """Where a live mutation lands: the start of the next window.

        ``EventSpec`` requires ``time_s > 0``, so before the first window
        has run (clock 0) mutations are stamped at the first boundary.
        """
        clock = self.stepper.clock
        return clock if clock > 0 else self.stepper.window_s

    def _validate_merged(self, new_events: tuple[EventSpec, ...]) -> None:
        """The full schedule — applied, pending, new — must stay a legal
        timeline (duplicate and fail/recover-alternation rules), exactly as
        ``repro validate`` would judge it."""
        applied = tuple(event for _, event in self._recorder.applied_events)
        pending = tuple(event for _, event in self.stepper.pending_events())
        TimelineSpec(
            events=applied + pending + new_events,
            window_s=self.stepper.window_s,
        )

    def _check_event(self, event: EventSpec) -> None:
        """Substrate checks batch validation does upfront, done live."""
        from types import SimpleNamespace

        from repro.api.timeline import check_timeline_supported

        # check_timeline_supported only reads .events; wrapping the lone
        # event in a real TimelineSpec would wrongly apply whole-timeline
        # rules (a lone dip_recover is fine here — the alternation against
        # the applied history is checked by _validate_merged).
        check_timeline_supported(
            SimpleNamespace(events=(event,)),  # type: ignore[arg-type]
            self.spec.runner,
            dips=self.substrate.dip_ids,
            vips=self.substrate.vip_ids(),
            controller_enabled=self.spec.controller.enabled,
        )
        controlled = set(self.substrate.controlled_vip_ids())
        pending_kinds = {
            (e.kind, e.vip) for _, e in self.stepper.pending_events()
        }
        if event.kind == "vip_onboard":
            if event.vip in controlled or ("vip_onboard", event.vip) in pending_kinds:
                raise ConfigurationError(
                    f"VIP {event.vip!r} is already onboarded (or has an "
                    "onboard pending)"
                )
            if event.vip not in self._boot_deferred:
                # A batch replay defers every VIP named by an onboard event
                # at boot, so onboarding a VIP that was *controlled* at this
                # session's boot could never replay bit-identically.
                raise ConfigurationError(
                    f"VIP {event.vip!r} was under control at session boot; "
                    "live onboarding is only replayable for VIPs that "
                    "started outside the control plane (list them in "
                    "fleet.deferred_vips or declare their onboard in the "
                    "timeline)"
                )
        if event.kind == "vip_offboard":
            if ("vip_offboard", event.vip) in pending_kinds:
                raise ConfigurationError(
                    f"VIP {event.vip!r} already has an offboard pending"
                )

    def submit_event(self, data: Mapping[str, Any]) -> dict[str, Any]:
        """Validate and schedule one live mutation from a JSON body.

        The body is an :class:`EventSpec` document; ``time_s`` may be
        omitted (the daemon stamps the next window boundary) or given
        explicitly (it must not precede already-executed time).  Parsing
        goes through :meth:`EventSpec.from_dict` — the same code path as
        spec files and ``repro validate`` — so a malformed body produces
        the identical dotted-path error text, surfaced as HTTP 422.
        """
        if not isinstance(data, Mapping):
            raise ConfigurationError(
                "timeline.events must be a JSON object (an EventSpec document)"
            )
        payload = dict(data)
        payload.setdefault("time_s", self._next_boundary())
        event = EventSpec.from_dict(payload)
        self._check_event(event)
        self._validate_merged((event,))
        when = self.stepper.inject(event)
        entry = {
            "received_clock_s": self.stepper.clock,
            "time_s": when,
            "kind": "event",
            "event": payload,
            "label": event.label(),
        }
        self.journal.append(entry)
        return {"scheduled_time_s": when, "label": event.label()}

    def submit_weights(self, data: Mapping[str, Any]) -> dict[str, Any]:
        """Queue a live weight override from a JSON body.

        Body: ``{"weights": {"DIP-0": 2.0, ...}, "vip": "vip-3"}`` (``vip``
        optional on a single-VIP substrate).  Validation runs *now* — the
        same checks :meth:`TimelineStepper.set_weights` applies (known
        VIP/DIPs, finite non-negative weights, positive sum) — and the
        override lands at the next window boundary, exactly where a
        controller tick's programming would.  The mutation is journaled;
        because a weight override has no :class:`EventSpec` form, a session
        that applied one can no longer export a bit-identical replay spec
        (``GET /session`` answers 409 from then on).
        """
        if not isinstance(data, Mapping):
            raise ConfigurationError(
                "weights body must be a JSON object with a 'weights' field "
                "(and optional 'vip')"
            )
        unknown = sorted(set(data) - {"weights", "vip"})
        if unknown:
            raise ConfigurationError(
                f"unknown field {unknown[0]!r} for a weights body; valid "
                "fields: vip, weights"
            )
        vip = data.get("vip")
        weights = data.get("weights")
        label = self.stepper.set_weights(
            None if vip is None else str(vip), weights
        )
        self._weight_overrides += 1
        # Overrides apply at the start of the next executed window, which
        # is the session clock itself (unlike EventSpec mutations they have
        # no ``time_s > 0`` constraint).
        self.journal.append(
            {
                "received_clock_s": self.stepper.clock,
                "time_s": self.stepper.clock,
                "kind": "weights",
                "vip": vip,
                "weights": {str(k): float(v) for k, v in weights.items()},
                "label": label,
            }
        )
        return {"scheduled_time_s": self.stepper.clock, "label": label}

    def submit_chaos(self, data: Mapping[str, Any]) -> dict[str, Any]:
        """Arm a live chaos drill: expand a seeded schedule and inject it.

        Body: ``{"horizon_s": <drill length>, "chaos": {...ChaosSpec...}}``.
        The schedule is drawn the same way a spec-armed chaos run draws it
        (:func:`expand_chaos_events`), offset to start at the next window
        boundary, and injected as plain events — so the drill journals,
        replays, and exports exactly like hand-posted mutations.
        """
        if not isinstance(data, Mapping):
            raise ConfigurationError(
                "chaos drill body must be a JSON object with 'horizon_s' "
                "and 'chaos' fields"
            )
        try:
            horizon = float(data.get("horizon_s", 0.0))
        except (TypeError, ValueError):
            raise ConfigurationError(
                "chaos drill horizon_s must be a number"
            ) from None
        if horizon <= 0:
            raise ConfigurationError(
                "chaos drill needs a positive horizon_s (the drill length)"
            )
        chaos: ChaosSpec = dataclass_from_dict(
            ChaosSpec, dict(data.get("chaos", {})), path="chaos"
        )
        if not chaos.enabled:
            raise ConfigurationError(
                "chaos drill needs chaos.seed set (the schedule is seeded)"
            )
        start = self._next_boundary()
        applied = tuple(event for _, event in self._recorder.applied_events)
        pending = tuple(event for _, event in self.stepper.pending_events())
        drawn = expand_chaos_events(
            chaos,
            dip_ids=self.substrate.dip_ids,
            horizon_s=horizon,
            manual_events=applied + pending,
        )
        events = tuple(
            replace(event, time_s=event.time_s + start) for event in drawn
        )
        self._validate_merged(events)
        for event in events:
            self.stepper.inject(event)
        labels = [event.label() for event in events]
        self.journal.append(
            {
                "received_clock_s": self.stepper.clock,
                "time_s": start,
                "kind": "chaos",
                "chaos": dict(data.get("chaos", {})),
                "horizon_s": horizon,
                "labels": labels,
            }
        )
        return {"scheduled_events": labels, "starts_at_s": start}

    # -- views -----------------------------------------------------------------

    def healthz(self) -> dict[str, Any]:
        return {
            "status": "ok",
            "name": self.spec.name,
            "runner": self.spec.runner,
            "seed": self.spec.seed,
            "clock_s": self.stepper.clock,
            "windows": len(self._recorder.windows),
            "window_s": self.stepper.window_s,
        }

    def vips(self) -> dict[str, Any]:
        controlled = set(self.substrate.controlled_vip_ids())
        return {
            "vips": [
                {"vip": vip, "controlled": vip in controlled}
                for vip in self.substrate.vip_ids()
            ]
        }

    def vip_stats(self, vip: str) -> dict[str, Any]:
        """The windowed stats ring for one VIP; raises ``KeyError`` when the
        VIP is neither live nor present anywhere in the retained history."""
        rows = [
            {
                "start_s": entry["start_s"],
                "end_s": entry["end_s"],
                **entry["vips"][vip],
            }
            for entry in self._vip_history
            if vip in entry["vips"]
        ]
        if not rows and vip not in self.substrate.vip_ids():
            raise KeyError(vip)
        return {"vip": vip, "windows": rows}

    def timeline_view(self) -> dict[str, Any]:
        return {
            "clock_s": self.stepper.clock,
            "window_s": self.stepper.window_s,
            "applied": [
                {"time_s": time_s, "label": event.label()}
                for time_s, event in self._recorder.applied_events
            ],
            "pending": [
                {"time_s": time_s, "label": event.label()}
                for time_s, event in self.stepper.pending_events()
            ],
        }

    # -- export ----------------------------------------------------------------

    def export_spec(self) -> ExperimentSpec:
        """Freeze the session into a batch-runnable spec (see module doc).

        The exported timeline carries the *applied* events in application
        order over a horizon equal to the session clock; pending events
        (scheduled beyond the clock) are dropped — they have not shaped the
        session yet.  On the fleet substrate the boot-deferred VIP set is
        recorded in ``fleet.deferred_vips`` so a replay defers them too.
        """
        if not self._recorder.windows:
            raise SessionConflict(
                "cannot export yet: no window has completed (the exported "
                "horizon would be empty)"
            )
        if self._weight_overrides:
            raise SessionConflict(
                f"cannot export: {self._weight_overrides} live weight "
                "override(s) were applied, and weight overrides have no "
                "timeline-event form — a batch re-run of the exported spec "
                "could not replay them bit-identically"
            )
        clock = self.stepper.clock
        applied = tuple(event for _, event in self._recorder.applied_events)
        draining = [
            event
            for event in applied
            if event.drain_s > 0 and event.time_s + event.drain_s >= clock
        ]
        if draining:
            raise SessionConflict(
                f"cannot export yet: the drain from "
                f"[{draining[0].label()}] is still in progress (ends at "
                f"t={draining[0].time_s + draining[0].drain_s:g}s)"
            )
        timeline = replace(
            self.spec.timeline,
            events=applied,
            horizon_s=clock,
            chaos=ChaosSpec(),
        )
        spec = replace(self.spec, timeline=timeline)
        if self.spec.runner == "fleet":
            spec = replace(
                spec,
                fleet=replace(
                    self.spec.fleet, deferred_vips=self._boot_deferred
                ),
            )
        return spec

    def export(self) -> dict[str, Any]:
        """The full session artifact: replay spec + windows + metrics + journal."""
        spec = self.export_spec()
        windows = tuple(self._recorder.windows)
        metrics = dict(self.substrate.setup_metrics)
        metrics["timeline_events"] = float(len(spec.timeline.events))
        metrics.update(timeline_metrics(windows))
        return {
            "spec": spec.to_dict(),
            "seed": spec.seed,
            "metrics": metrics,
            "windows": [window.to_dict() for window in windows],
            "journal": list(self.journal),
        }

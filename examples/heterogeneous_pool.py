#!/usr/bin/env python3
"""Heterogeneous DIP pool evaluated on the request-level simulator.

Computes KnapsackLB weights for the 30-DIP Table 3 testbed (mixed DS / F
VM types) and then replays the same open-loop workload through the
request-level simulator under round robin, scaled-out least connection and
KnapsackLB's weighted round robin, printing the per-request latency
comparison of Fig. 12 / Table 4.

Run with:  python examples/heterogeneous_pool.py
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.experiments import run_policy_comparison


def main() -> None:
    print("Computing KnapsackLB weights and replaying the workload (this takes ~a minute)...")
    comparison = run_policy_comparison(requests=5000, policies=("rr", "lc", "hash", "klb"))

    groups = ("1-core", "2-core", "4-core", "8-core")
    rows = []
    for name, run in comparison.runs.items():
        rows.append(
            [name]
            + [f"{run.utilization_by_group[g] * 100:.0f}%" for g in groups]
            + [f"{run.overall_latency_ms:.2f}"]
        )
    print(
        format_table(
            ["policy"] + [f"{g} CPU" for g in groups] + ["mean latency (ms)"],
            rows,
            title="Policies on the 30-DIP testbed (request-level simulation)",
        )
    )

    for baseline in ("rr", "lc", "hash"):
        gain = comparison.max_gain_percent(baseline)
        fraction = comparison.improved_fraction_percent(baseline)
        print(
            f"KnapsackLB vs {baseline.upper():5s}: cuts latency by up to "
            f"{gain:.0f}% for {fraction:.0f}% of requests"
        )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Heterogeneous DIP pool: policy sweep on the request-level simulator.

One declarative base spec (the 30-DIP Table 3 testbed on the request-level
engine) swept over the LB policy axis — round robin, least connection,
5-tuple hash — plus a KnapsackLB-controlled run of the same spec, all
aligned in one comparison report (the Fig. 12 / Table 4 story).

The same sweep from the shell:

    python -m repro sweep testbed_klb --runner request \
        --set controller.enabled=false \
        --axis policy.name=rr,lc,hash

Run with:  python examples/heterogeneous_pool.py
"""

from __future__ import annotations

import os

from repro import api

#: Smoke tests set this to keep the example fast; the default sizes match
#: the paper's replay methodology more closely.
FAST = bool(os.environ.get("REPRO_EXAMPLE_FAST"))


def main() -> None:
    base = api.get_spec("testbed_klb").with_overrides(
        {
            "runner": "request",
            "controller.enabled": False,
            "workload.num_requests": 3_000 if FAST else 30_000,
        }
    )

    print("Sweeping LB policies over the 30-DIP testbed (request-level engine)...")
    sweep = api.Sweep.from_axes(base, {"policy.name": ["rr", "lc", "hash"]})
    results = list(sweep.run())

    print("Converging KnapsackLB and replaying the same workload...")
    klb = api.run(
        base.with_overrides(
            {"name": "testbed_klb/policy=klb+wrr", "controller.enabled": True}
        )
    )
    results.append(klb)

    print()
    print(api.compare(results).render())

    baseline = results[0]
    gain = baseline.metrics["mean_latency_ms"] / klb.metrics["mean_latency_ms"]
    print(
        f"\nKnapsackLB vs RR: mean latency {klb.metrics['mean_latency_ms']:.2f} ms "
        f"vs {baseline.metrics['mean_latency_ms']:.2f} ms ({gain:.1f}x)"
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Programming weights through different LB front-ends (§6.5).

KnapsackLB is a meta LB: the same weights can be pushed to HAProxy or Nginx
(native weight interface) or, when the LB has no such interface (Azure L4
LB), to a DNS traffic manager.  This example programs the 0.2 / 0.3 / 0.5
split of Table 5 through each front-end and measures the request share each
DIP actually receives.  The pool comes from the declarative pool builder
the experiment specs use (`build_pool`), so there is no hand-wired cluster
setup here — only the facade under test.

Run with:  python examples/other_load_balancers.py
"""

from __future__ import annotations

import os

from repro.analysis import format_table
from repro.exceptions import ConfigurationError
from repro.lb import AzureLBSim, AzureTrafficManagerSim, HAProxySim, NginxSim
from repro.sim import RequestCluster
from repro.workloads import build_pool

WEIGHTS = {"DIP-1": 0.2, "DIP-2": 0.3, "DIP-3": 0.5}

NUM_REQUESTS = 2_000 if os.environ.get("REPRO_EXAMPLE_FAST") else 8_000


def measure(facade, *, seed: int = 5) -> dict[str, float]:
    dips = build_pool("uniform", num_dips=3, vm_name="web", vcpus=2,
                      capacity_rps=800.0, seed=3)
    cluster = RequestCluster(dips, facade.policy, rate_rps=500.0, seed=seed)
    cluster.run(num_requests=NUM_REQUESTS)
    return cluster.request_share()


def main() -> None:
    rows = [["programmed"] + [f"{w * 100:.0f}%" for w in WEIGHTS.values()]]

    haproxy = HAProxySim(list(WEIGHTS), algorithm="weighted-roundrobin")
    haproxy.set_weights(WEIGHTS)
    rows.append(["HAProxy (WRR)"] + [f"{measure(haproxy).get(d, 0) * 100:.0f}%" for d in WEIGHTS])

    nginx = NginxSim(list(WEIGHTS), algorithm="weighted-roundrobin")
    nginx.set_weights(WEIGHTS)
    rows.append(["Nginx (WRR)"] + [f"{measure(nginx).get(d, 0) * 100:.0f}%" for d in WEIGHTS])

    traffic_manager = AzureTrafficManagerSim(list(WEIGHTS), cache_ttl_s=10.0, seed=1)
    traffic_manager.set_weights(WEIGHTS)
    rows.append(
        ["Azure TM (DNS)"] + [f"{measure(traffic_manager).get(d, 0) * 100:.0f}%" for d in WEIGHTS]
    )

    print(format_table(["front-end"] + list(WEIGHTS), rows, title="Table 5: request share per DIP"))

    azure = AzureLBSim(list(WEIGHTS))
    try:
        azure.set_weights(WEIGHTS)
    except ConfigurationError as error:
        print(f"\nAzure L4 LB: {error}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: run KnapsackLB against the paper's 30-DIP testbed.

Builds the Table 3 testbed as a fluid cluster at 70 % load, lets the
KnapsackLB controller bootstrap idle latencies, explore weight-latency
curves (Algorithm 1), solve the ILP and program the weights — then prints
the weights and the resulting per-DIP-type utilization and latency.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import KnapsackLBController
from repro.analysis import format_table
from repro.workloads import build_testbed_cluster


def main() -> None:
    cluster = build_testbed_cluster(load_fraction=0.70, seed=7)
    controller = KnapsackLBController("vip-quickstart", cluster)

    print("Converging (bootstrap -> exploration -> ILP -> program)...")
    assignment = controller.converge()

    print(f"\nObjective (estimated): {assignment.objective_ms:.3f}")
    print(f"ILP solve time: {assignment.solve_time_s * 1000:.0f} ms\n")

    state = cluster.state()
    rows = []
    for cores in (1, 2, 4, 8):
        dips = [d for d, s in cluster.dips.items() if s.vm_type.vcpus == cores]
        mean_weight = sum(assignment.weights.get(d, 0.0) for d in dips) / len(dips)
        mean_util = sum(state.utilization[d] for d in dips) / len(dips)
        mean_latency = sum(state.mean_latency_ms[d] for d in dips) / len(dips)
        rows.append(
            [f"{cores}-core", len(dips), f"{mean_weight:.4f}", f"{mean_util * 100:.0f}%", f"{mean_latency:.2f}"]
        )
    print(
        format_table(
            ["DIP type", "#DIPs", "mean weight", "CPU util.", "latency (ms)"],
            rows,
            title="KnapsackLB weight assignment (compare Fig. 11 / Fig. 12)",
        )
    )
    print(f"\nOverall mean latency: {state.overall_mean_latency_ms():.2f} ms")

    # Compare against an equal split (what RR / 5-tuple hashing would do).
    equal = {d: 1.0 / len(cluster.dips) for d in cluster.dips}
    cluster.set_weights(equal)
    print(f"Equal-split mean latency: {cluster.state().overall_mean_latency_ms():.2f} ms")


if __name__ == "__main__":
    main()

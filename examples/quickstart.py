#!/usr/bin/env python3
"""Quickstart: one declarative spec in, one reproducible artifact out.

Runs the registered ``testbed_klb`` spec — the paper's 30-DIP Table 3
testbed at 70 % load, converged by the KnapsackLB controller on the
analytic fluid model — and prints the headline metrics plus the per-DIP-type
weight/utilization/latency table (compare Fig. 11 / Fig. 12).

The same run from the shell:

    python -m repro run testbed_klb -o testbed.json
    python -m repro run testbed_klb --runner request   # request-level engine

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import api
from repro.analysis import format_table


def main() -> None:
    spec = api.get_spec("testbed_klb")
    print(f"Running spec {spec.name!r} on the {spec.runner!r} substrate...")
    result = api.run(spec)

    assignment = result.detail  # the WeightAssignment the controller programmed
    print(f"\nObjective (estimated): {assignment.objective_ms:.3f}")
    print(f"Wall clock: {result.provenance.wall_clock_s:.2f} s\n")

    # Group the artifact's per-DIP rows by VM core count.
    cores_of = {
        dip: server.vm_type.vcpus
        for dip, server in api.build_cluster(spec).dips.items()
    }
    rows = []
    for cores in (1, 2, 4, 8):
        dips = [d for d, c in cores_of.items() if c == cores]
        summary = [result.dip_summaries[d] for d in dips]
        mean_weight = sum(assignment.weights.get(d, 0.0) for d in dips) / len(dips)
        mean_util = sum(s["utilization"] for s in summary) / len(summary)
        mean_latency = sum(s["mean_latency_ms"] for s in summary) / len(summary)
        rows.append(
            [
                f"{cores}-core",
                len(dips),
                f"{mean_weight:.4f}",
                f"{mean_util * 100:.0f}%",
                f"{mean_latency:.2f}",
            ]
        )
    print(
        format_table(
            ["DIP type", "#DIPs", "mean weight", "CPU util.", "latency (ms)"],
            rows,
            title="KnapsackLB weight assignment (compare Fig. 11 / Fig. 12)",
        )
    )
    print(f"\nOverall mean latency: {result.metrics['mean_latency_ms']:.2f} ms")
    print(
        f"Equal-split mean latency: {result.metrics['equal_split_latency_ms']:.2f} ms"
        f"  ({result.metrics['latency_gain']:.1f}x gain)"
    )

    out = result.save("quickstart_result.json")
    reloaded = api.RunResult.load(out)
    print(f"\nArtifact saved to {out} (reloads identically: "
          f"{reloaded.metrics == result.metrics})")


if __name__ == "__main__":
    main()

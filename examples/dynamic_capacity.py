#!/usr/bin/env python3
"""Noisy-neighbour scenario: KnapsackLB adapts to dynamic capacity changes.

Reproduces the §2.1 / Fig. 14 situation: a 3-DIP pool where one DIP's
capacity is squeezed by a cache-thrashing antagonist while the controller is
running — written as a *pure timeline*.  The squeeze and the later clear are
declarative `EventSpec`s on the spec itself, so the identical experiment
runs on the request-level engine by flipping ``runner="request"``, and the
result carries the full windowed trajectory instead of only end-of-run
numbers.

Run with:  python examples/dynamic_capacity.py
"""

from __future__ import annotations

from repro import api
from repro.analysis import format_table


def main() -> None:
    spec = api.ExperimentSpec(
        name="noisy-neighbour",
        runner="fluid",
        pool=api.PoolSpec(kind="three_dip", vm=api.VmSpec(vcpus=2)),
        workload=api.WorkloadSpec(load_fraction=0.60),
        timeline=api.TimelineSpec(
            events=(
                # An antagonist starts on DIP-LC: capacity drops to 60 %...
                api.EventSpec(
                    time_s=15.0, kind="capacity_ratio", dip="DIP-LC", value=0.60
                ),
                # ... and stops again a minute later.
                api.EventSpec(
                    time_s=75.0, kind="capacity_ratio", dip="DIP-LC", value=1.0
                ),
            ),
            window_s=5.0,
            horizon_s=110.0,
        ),
        seed=11,
    )

    # Observers stream the run while it executes: every applied event and
    # every 5 s telemetry window prints as it happens (same as `run --watch`).
    result = api.run(spec, observers=[api.PrintingObserver()])

    rows = [
        [
            f"[{window.start_s:.0f}, {window.end_s:.0f})",
            f"{window.metrics['mean_latency_ms']:.2f}",
            f"{window.metrics['max_utilization'] * 100:.0f}%",
            f"{window.dip_share.get('DIP-LC', 0.0) * 100:.0f}%",
            "yes" if window.metrics.get("reprogrammed") else "",
            "; ".join(window.events),
        ]
        for window in result.windows
    ]
    print()
    print(
        format_table(
            ["window (s)", "latency (ms)", "max CPU", "DIP-LC share", "reprog", "events"],
            rows,
            title="The squeeze and the controller's recovery, window by window",
        )
    )
    print()
    print(
        "end of run:"
        f" run-average latency {result.metrics['mean_latency_ms']:.2f} ms,"
        f" final window {result.metrics['final_latency_ms']:.2f} ms,"
        f" max utilization {result.metrics['max_utilization'] * 100:.0f}%"
    )


if __name__ == "__main__":
    main()

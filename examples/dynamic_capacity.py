#!/usr/bin/env python3
"""Noisy-neighbour scenario: KnapsackLB adapts to dynamic capacity changes.

Reproduces the §2.1 / Fig. 14 situation: a 3-DIP pool where one DIP's
capacity is squeezed by a cache-thrashing antagonist while the controller is
running.  The pool and controller come from a declarative spec
(``pool.kind = "three_dip"``); the squeeze itself is driven by hand, which
is exactly what :func:`repro.api.build_cluster` is for — spec-built systems
you perturb interactively.

Run with:  python examples/dynamic_capacity.py
"""

from __future__ import annotations

from repro import KnapsackLBController, api
from repro.analysis import format_table
from repro.sim import FluidCluster


def describe(cluster: FluidCluster, controller: KnapsackLBController, title: str) -> None:
    state = cluster.state()
    weights = controller.last_assignment.weights if controller.last_assignment else {}
    rows = [
        [
            dip,
            f"{server.capacity_rps:.0f}",
            f"{weights.get(dip, 0.0):.3f}",
            f"{state.utilization[dip] * 100:.0f}%",
            f"{state.mean_latency_ms[dip]:.2f}",
        ]
        for dip, server in cluster.dips.items()
    ]
    print(
        format_table(
            ["DIP", "capacity (rps)", "weight", "CPU", "latency (ms)"], rows, title=title
        )
    )
    print()


def main() -> None:
    spec = api.ExperimentSpec(
        name="noisy-neighbour",
        runner="fluid",
        pool=api.PoolSpec(kind="three_dip", vm=api.VmSpec(vcpus=2)),
        workload=api.WorkloadSpec(load_fraction=0.70),
        seed=11,
    )
    cluster = api.build_cluster(spec)

    controller = KnapsackLBController("vip-noisy", cluster)
    controller.converge()
    describe(cluster, controller, "Before the noisy neighbour (all DIPs at full capacity)")

    print("An antagonist starts on DIP-LC: capacity drops to 60 %...\n")
    cluster.set_capacity_ratio("DIP-LC", 0.60)

    for step in range(1, 5):
        report = controller.control_step()
        events = ", ".join(e.kind.value for e in report.events) or "none"
        print(f"control step {step}: events = {events}, reprogrammed = {report.reprogrammed}")
    print()
    describe(cluster, controller, "After adaptation (weights shifted away from DIP-LC)")


if __name__ == "__main__":
    main()

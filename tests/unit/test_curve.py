"""Unit tests for weight-latency curve fitting (§4.2)."""

from __future__ import annotations

import pytest

from repro.core.config import CurveConfig
from repro.core.curve import WeightLatencyCurve, fit_curve, fit_error
from repro.core.types import MeasurementPoint
from repro.exceptions import ConfigurationError, CurveFitError


def quad_points(a: float, b: float, c: float, weights):
    return [
        MeasurementPoint(weight=w, latency_ms=a * w * w + b * w + c) for w in weights
    ]


class TestFitCurve:
    def test_recovers_quadratic(self):
        points = quad_points(100.0, 5.0, 2.0, [0.0, 0.05, 0.1, 0.15, 0.2])
        curve = fit_curve(points)
        assert curve.predict(0.12) == pytest.approx(100 * 0.12**2 + 5 * 0.12 + 2, rel=1e-3)

    def test_degree_two_by_default(self):
        points = quad_points(50.0, 1.0, 3.0, [0.0, 0.1, 0.2, 0.3])
        assert fit_curve(points).degree == 2

    def test_degree_reduced_with_few_points(self):
        points = quad_points(50.0, 1.0, 3.0, [0.0, 0.1, 0.2])[:3]
        curve = fit_curve(points, config=CurveConfig(degree=5, min_points=3))
        assert curve.degree <= 2

    def test_requires_min_points(self):
        points = quad_points(50.0, 1.0, 3.0, [0.0, 0.1])
        with pytest.raises(CurveFitError):
            fit_curve(points)

    def test_dropped_points_excluded(self):
        points = quad_points(100.0, 5.0, 2.0, [0.0, 0.05, 0.1, 0.15])
        points.append(MeasurementPoint(weight=0.5, latency_ms=1000.0, dropped=True))
        curve = fit_curve(points)
        # The outlier dropped point must not bend the fit.
        assert curve.predict(0.1) == pytest.approx(100 * 0.01 + 5 * 0.1 + 2, rel=0.05)

    def test_dropped_only_raises(self):
        points = [
            MeasurementPoint(weight=w, latency_ms=10.0, dropped=True)
            for w in (0.1, 0.2, 0.3)
        ]
        with pytest.raises(CurveFitError):
            fit_curve(points)

    def test_w_max_defaults_to_largest_weight(self):
        points = quad_points(10.0, 1.0, 2.0, [0.0, 0.1, 0.25])
        assert fit_curve(points).w_max == pytest.approx(0.25)

    def test_explicit_l0_and_wmax(self):
        points = quad_points(10.0, 1.0, 2.0, [0.0, 0.1, 0.25])
        curve = fit_curve(points, l0_ms=1.5, w_max=0.4)
        assert curve.l0_ms == pytest.approx(1.5)
        assert curve.w_max == pytest.approx(0.4)

    def test_fit_points_recorded(self):
        points = quad_points(10.0, 1.0, 2.0, [0.0, 0.1, 0.25])
        assert len(fit_curve(points).fit_points) == 3


class TestPrediction:
    def test_never_below_l0(self, simple_curve):
        assert simple_curve.predict(0.0) >= simple_curve.l0_ms

    def test_monotone_on_grid(self, simple_curve):
        grid = [i / 100 for i in range(0, 30)]
        predictions = simple_curve.predict_many(grid)
        assert all(b >= a - 1e-9 for a, b in zip(predictions, predictions[1:]))

    def test_monotone_correction_for_decreasing_fit(self):
        # A fit that initially decreases (negative linear term) must be
        # flattened by the monotone envelope.
        curve = WeightLatencyCurve(coefficients=(100.0, -10.0, 5.0), l0_ms=1.0, w_max=0.3)
        low = curve.predict(0.02)
        higher = curve.predict(0.06)
        assert higher >= low

    def test_monotone_correction_concave(self):
        # Concave parabola (a < 0) peaks mid-range; the envelope must not
        # decrease past the vertex.
        curve = WeightLatencyCurve(coefficients=(-100.0, 60.0, 2.0), l0_ms=1.0, w_max=0.5)
        at_vertex = curve.predict(0.3)
        beyond = curve.predict(0.5)
        assert beyond >= at_vertex - 1e-9

    def test_monotone_can_be_disabled(self):
        curve = WeightLatencyCurve(
            coefficients=(-100.0, 60.0, 2.0),
            l0_ms=0.0,
            w_max=0.5,
            enforce_monotone=False,
        )
        assert curve.predict(0.5) < curve.predict(0.3)

    def test_negative_weight_rejected(self, simple_curve):
        with pytest.raises(ConfigurationError):
            simple_curve.predict(-0.1)

    def test_predict_many_matches_predict(self, simple_curve):
        grid = [0.0, 0.05, 0.1]
        assert simple_curve.predict_many(grid) == [simple_curve.predict(w) for w in grid]

    def test_high_degree_envelope_uses_grid(self):
        curve = WeightLatencyCurve(
            coefficients=(5.0, -3.0, 0.5, 1.0), l0_ms=0.5, w_max=1.0
        )
        values = [curve.predict(w) for w in (0.0, 0.25, 0.5, 0.75, 1.0)]
        assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))


class TestInversion:
    def test_round_trip(self, simple_curve):
        weight = 0.12
        latency = simple_curve.predict(weight)
        recovered = simple_curve.weight_for_latency(latency)
        assert simple_curve.predict(recovered) == pytest.approx(latency, rel=1e-3)

    def test_latency_below_idle_maps_to_zero(self, simple_curve):
        assert simple_curve.weight_for_latency(0.1) == 0.0

    def test_latency_above_range_returns_upper(self, simple_curve):
        upper = 0.3
        assert simple_curve.weight_for_latency(10_000.0, upper=upper) == pytest.approx(upper)


class TestRescaling:
    def test_rescaled_shifts_weight_axis(self, simple_curve):
        shifted = simple_curve.rescaled(0.5)
        # Half the traffic capacity: the latency seen at w is the old latency at 2w.
        assert shifted.predict(0.05) == pytest.approx(simple_curve.predict(0.1), rel=1e-6)

    def test_rescaled_updates_w_max(self, simple_curve):
        shifted = simple_curve.rescaled(0.5)
        assert shifted.w_max == pytest.approx(simple_curve.w_max * 0.5)

    def test_rescaled_rejects_nonpositive(self, simple_curve):
        with pytest.raises(ConfigurationError):
            simple_curve.rescaled(0.0)

    def test_rescale_for_latency_shift_matches_observation(self, simple_curve):
        # Latency observed at weight 0.10 is what the curve predicted for 0.15:
        # capacity effectively dropped; the new curve must predict the observed
        # latency at 0.10.
        observed = simple_curve.predict(0.15)
        adjusted = simple_curve.rescale_for_latency_shift(0.10, observed)
        assert adjusted.predict(0.10) == pytest.approx(observed, rel=0.02)

    def test_rescale_traffic_decrease_direction(self, simple_curve):
        # Observed latency at weight 0.15 matches what the curve predicted at
        # 0.10: there is more headroom, so predictions at a given weight drop.
        observed = simple_curve.predict(0.10)
        adjusted = simple_curve.rescale_for_latency_shift(0.15, observed)
        assert adjusted.predict(0.15) <= simple_curve.predict(0.15) + 1e-9

    def test_rescale_requires_positive_weight(self, simple_curve):
        with pytest.raises(ConfigurationError):
            simple_curve.rescale_for_latency_shift(0.0, 5.0)

    def test_paper_example_delta(self):
        """The §4.5 worked example: 5 ms at w=0.5, now 7 ms; w(7ms)=0.625 → δ=0.8."""
        # Linear curve: latency = 5 + 16*(w - 0.5) → 7 ms at 0.625.
        curve = WeightLatencyCurve(coefficients=(16.0, -3.0), l0_ms=1.0, w_max=1.0)
        assert curve.predict(0.5) == pytest.approx(5.0)
        assert curve.weight_for_latency(7.0) == pytest.approx(0.625, rel=1e-3)
        adjusted = curve.rescale_for_latency_shift(0.5, 7.0)
        assert adjusted.weight_scale == pytest.approx(0.8, rel=1e-3)


class TestFitError:
    def test_zero_for_exact_fit(self):
        points = quad_points(100.0, 5.0, 2.0, [0.0, 0.05, 0.1, 0.15, 0.2])
        curve = fit_curve(points)
        assert fit_error(curve, points) < 0.2

    def test_positive_for_mismatched_points(self, simple_curve):
        bad = [MeasurementPoint(weight=0.1, latency_ms=100.0)]
        assert fit_error(simple_curve, bad) > 10

    def test_empty_points(self, simple_curve):
        assert fit_error(simple_curve, []) == 0.0


class TestValidation:
    def test_requires_coefficients(self):
        with pytest.raises(ConfigurationError):
            WeightLatencyCurve(coefficients=(), l0_ms=1.0, w_max=0.1)

    def test_rejects_negative_l0(self):
        with pytest.raises(ConfigurationError):
            WeightLatencyCurve(coefficients=(1.0,), l0_ms=-1.0, w_max=0.1)

    def test_rejects_nonpositive_scale(self):
        with pytest.raises(ConfigurationError):
            WeightLatencyCurve(coefficients=(1.0,), l0_ms=1.0, w_max=0.1, weight_scale=0.0)

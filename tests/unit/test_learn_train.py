"""The training loop: seeding, checkpoint/resume identity, learning signal.

The acceptance bar: ``train → checkpoint → resume`` is bit-identical to
the uninterrupted run (byte-equal final checkpoints), and a briefly
trained bandit beats the uniform-random weight baseline on episode
reward on both target scenarios.
"""

from __future__ import annotations

import json

import pytest

from repro.exceptions import ConfigurationError
from repro.learn import (
    AgentSpec,
    EnvSpec,
    LearnSpec,
    LoadBalanceEnv,
    episode_seed,
    evaluate,
    get_learn_spec,
    learn_spec_registry,
    load_checkpoint,
    make_agent,
    train,
)
from repro.learn.train import EVAL_STREAM, TRAIN_STREAM


def small_spec(**overrides) -> LearnSpec:
    base = dict(
        name="train-test",
        env=EnvSpec(
            scenario="dip_outage_recovery", num_dips=4, load_fraction=0.5
        ),
        agent=AgentSpec(name="bandit"),
        episodes=4,
        seed=7,
        eval_every=2,
        eval_episodes=2,
    )
    base.update(overrides)
    return LearnSpec(**base)


class TestEpisodeSeed:
    def test_pure_and_stream_separated(self):
        assert episode_seed(7, TRAIN_STREAM, 0) == episode_seed(
            7, TRAIN_STREAM, 0
        )
        assert episode_seed(7, TRAIN_STREAM, 0) != episode_seed(
            7, TRAIN_STREAM, 1
        )
        assert episode_seed(7, TRAIN_STREAM, 0) != episode_seed(
            7, EVAL_STREAM, 0
        )


class TestLearnSpec:
    def test_unknown_field_names_the_dotted_path(self):
        with pytest.raises(ConfigurationError, match="learn.agent.epsilonn"):
            LearnSpec.from_dict(
                {"name": "x", "agent": {"name": "bandit", "epsilonn": 0.5}}
            )

    def test_unknown_top_level_field_is_prefixed_too(self):
        with pytest.raises(ConfigurationError, match="learn.episods"):
            LearnSpec.from_dict({"name": "x", "episods": 3})

    def test_round_trips_through_dict(self):
        spec = small_spec()
        assert LearnSpec.from_dict(spec.to_dict()) == spec

    @pytest.mark.parametrize(
        "kwargs, message",
        [
            ({"episodes": 0}, "episodes"),
            ({"seed": -1}, "seed"),
            ({"eval_every": -1}, "eval_every"),
            ({"eval_episodes": 0}, "eval_episodes"),
            ({"checkpoint_every": -1}, "checkpoint_every"),
        ],
    )
    def test_field_rules(self, kwargs, message):
        with pytest.raises(ConfigurationError, match=message):
            small_spec(**kwargs)

    def test_registry_resolves_named_specs(self):
        names = set(learn_spec_registry())
        assert "bandit_outage" in names
        spec = get_learn_spec("bandit_outage")
        assert spec.agent.name == "bandit"
        assert spec.env.scenario == "dip_outage_recovery"

    def test_unknown_name_lists_registered_specs(self):
        with pytest.raises(ConfigurationError, match="bandit_outage"):
            get_learn_spec("no-such-learn-spec")

    def test_spec_files_load(self, tmp_path):
        path = tmp_path / "learn.json"
        path.write_text(small_spec().to_json())
        assert get_learn_spec(str(path)) == small_spec()


class TestTraining:
    def test_training_is_seed_deterministic(self):
        a = train(small_spec(eval_every=0))
        b = train(small_spec(eval_every=0))
        assert list(a.history) == list(b.history)
        assert a.agent.state_dict() == b.agent.state_dict()

    def test_history_covers_every_episode(self):
        result = train(small_spec(eval_every=0, episodes=3))
        assert [row["episode"] for row in result.history] == [0, 1, 2]
        assert all("return" in row for row in result.history)

    def test_periodic_evals_land_on_the_schedule(self):
        result = train(small_spec(episodes=4, eval_every=2))
        assert [row["at_episode"] for row in result.evals] == [2, 4]


class TestCheckpointResume:
    def test_resume_matches_uninterrupted_run_byte_for_byte(self, tmp_path):
        full_path = tmp_path / "full.json"
        part_path = tmp_path / "part.json"
        train(small_spec(episodes=4), checkpoint=full_path)
        # Interrupt after 3 episodes (off the eval cadence, deliberately),
        # then resume to the full budget.
        train(small_spec(episodes=3), checkpoint=part_path)
        resumed = train(
            small_spec(episodes=4), checkpoint=part_path, resume=True
        )
        assert full_path.read_bytes() == part_path.read_bytes()
        uninterrupted = train(small_spec(episodes=4))
        assert resumed.agent.state_dict() == uninterrupted.agent.state_dict()
        assert list(resumed.history) == list(uninterrupted.history)

    def test_checkpoint_every_writes_mid_run(self, tmp_path):
        path = tmp_path / "ck.json"
        train(
            small_spec(episodes=2, eval_every=0, checkpoint_every=1),
            checkpoint=path,
        )
        data = load_checkpoint(path)
        assert data["next_episode"] == 2
        assert len(data["history"]) == 2

    def test_resume_requires_the_same_spec(self, tmp_path):
        path = tmp_path / "ck.json"
        train(small_spec(episodes=2), checkpoint=path)
        changed = small_spec(episodes=4, seed=8)
        with pytest.raises(ConfigurationError, match="different learn spec"):
            train(changed, checkpoint=path, resume=True)

    def test_resume_allows_a_bigger_episode_budget(self, tmp_path):
        path = tmp_path / "ck.json"
        train(small_spec(episodes=2), checkpoint=path)
        result = train(small_spec(episodes=3), checkpoint=path, resume=True)
        assert len(result.history) == 3

    def test_resume_without_checkpoint_rejected(self):
        with pytest.raises(ConfigurationError, match="checkpoint"):
            train(small_spec(), resume=True)

    def test_corrupt_checkpoint_rejected(self, tmp_path):
        path = tmp_path / "ck.json"
        path.write_text("{\"schema\": \"bogus\"}")
        with pytest.raises(ConfigurationError, match="schema"):
            load_checkpoint(path)

    def test_checkpoint_is_json_round_trippable(self, tmp_path):
        path = tmp_path / "ck.json"
        train(small_spec(episodes=2), checkpoint=path)
        data = json.loads(path.read_text())
        assert data["learn_spec"]["agent"]["name"] == "bandit"
        assert data["agent_state"]["kind"] == "bandit"


class TestLearningSignal:
    """A briefly trained bandit beats uniform-random weight assignment."""

    @pytest.mark.parametrize(
        "scenario", ["dip_outage_recovery", "diurnal_surge"]
    )
    def test_bandit_beats_random_on_episode_reward(self, scenario):
        env_spec = EnvSpec(scenario=scenario)
        spec = LearnSpec(
            name=f"signal-{scenario}",
            env=env_spec,
            agent=AgentSpec(name="bandit"),
            episodes=3,
            seed=7,
        )
        trained = train(spec)
        env = LoadBalanceEnv(env_spec, seed=episode_seed(7, EVAL_STREAM, 0))
        bandit_eval = evaluate(env, trained.agent, episodes=2, base_seed=7)
        random_agent = make_agent(
            AgentSpec(name="random"),
            num_dips=env.num_dips,
            observation_size=env.observation_size,
            seed=7,
        )
        random_eval = evaluate(env, random_agent, episodes=2, base_seed=7)
        assert bandit_eval["mean_return"] > random_eval["mean_return"]

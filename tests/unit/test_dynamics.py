"""Unit tests for dynamics detection and reaction (§4.5)."""

from __future__ import annotations

import pytest

from repro.core.config import DynamicsConfig
from repro.core.curve import WeightLatencyCurve
from repro.core.dynamics import (
    DynamicsDetector,
    DynamicsEventKind,
    Observation,
    RefreshBudget,
    relative_deviation,
    rescale_all_curves,
    rescale_curve_for_observation,
)
from repro.exceptions import ConfigurationError


def linear_curve(l0=2.0, slope=20.0, w_max=0.4) -> WeightLatencyCurve:
    return WeightLatencyCurve(coefficients=(slope, l0), l0_ms=l0, w_max=w_max)


@pytest.fixture
def curves():
    return {f"d{i}": linear_curve() for i in range(5)}


@pytest.fixture
def detector():
    return DynamicsDetector(DynamicsConfig())


def observations_at(curves, weight, factor):
    """Observations whose latency is ``factor`` × the curve estimate."""
    return [
        Observation(dip=d, weight=weight, observed_latency_ms=c.predict(weight) * factor)
        for d, c in curves.items()
    ]


class TestRelativeDeviation:
    def test_positive(self):
        assert relative_deviation(12.0, 10.0) == pytest.approx(0.2)

    def test_negative(self):
        assert relative_deviation(8.0, 10.0) == pytest.approx(-0.2)

    def test_zero_estimate_rejected(self):
        with pytest.raises(ConfigurationError):
            relative_deviation(1.0, 0.0)


class TestDetector:
    def test_no_events_when_matching(self, detector, curves):
        events = detector.detect(observations_at(curves, 0.2, 1.0), curves)
        assert events == []

    def test_small_deviation_below_threshold_ignored(self, detector, curves):
        events = detector.detect(observations_at(curves, 0.2, 1.1), curves)
        assert events == []

    def test_traffic_increase_when_all_dips_slower(self, detector, curves):
        events = detector.detect(observations_at(curves, 0.2, 1.4), curves)
        assert len(events) == 1
        assert events[0].kind is DynamicsEventKind.TRAFFIC_INCREASE
        assert set(events[0].dips) == set(curves)
        assert events[0].magnitude == pytest.approx(0.4, rel=0.05)

    def test_traffic_decrease_when_all_dips_faster(self, detector, curves):
        events = detector.detect(observations_at(curves, 0.2, 0.6), curves)
        assert len(events) == 1
        assert events[0].kind is DynamicsEventKind.TRAFFIC_DECREASE

    def test_single_dip_deviation_is_capacity_change(self, detector, curves):
        observations = observations_at(curves, 0.2, 1.0)
        observations[0] = Observation(
            dip="d0", weight=0.2, observed_latency_ms=curves["d0"].predict(0.2) * 1.5
        )
        events = detector.detect(observations, curves)
        assert len(events) == 1
        assert events[0].kind is DynamicsEventKind.CAPACITY_CHANGE
        assert events[0].dips == ("d0",)

    def test_two_of_five_deviating_are_capacity_changes(self, detector, curves):
        observations = observations_at(curves, 0.2, 1.0)
        for index in (0, 1):
            dip = f"d{index}"
            observations[index] = Observation(
                dip=dip, weight=0.2, observed_latency_ms=curves[dip].predict(0.2) * 1.5
            )
        events = detector.detect(observations, curves)
        assert len(events) == 2
        assert all(e.kind is DynamicsEventKind.CAPACITY_CHANGE for e in events)

    def test_unknown_dip_observation_ignored(self, detector, curves):
        events = detector.detect(
            [Observation(dip="ghost", weight=0.2, observed_latency_ms=100.0)], curves
        )
        assert events == []

    def test_empty_observations(self, detector, curves):
        assert detector.detect([], curves) == []

    def test_quorum_boundary(self, curves):
        """4 of 5 DIPs deviating meets the 0.8 quorum → one traffic event."""
        detector = DynamicsDetector(DynamicsConfig(traffic_change_quorum=0.8))
        observations = observations_at(curves, 0.2, 1.5)
        observations[0] = Observation(
            dip="d0", weight=0.2, observed_latency_ms=curves["d0"].predict(0.2)
        )
        events = detector.detect(observations, curves)
        assert len(events) == 1
        assert events[0].kind is DynamicsEventKind.TRAFFIC_INCREASE
        assert len(events[0].dips) == 4


class TestRescaling:
    def test_capacity_loss_shrinks_weights(self):
        curve = linear_curve()
        obs = Observation(dip="d", weight=0.2, observed_latency_ms=curve.predict(0.2) * 1.5)
        adjusted = rescale_curve_for_observation(curve, obs)
        # After the shift the curve predicts the observed latency at w=0.2.
        assert adjusted.predict(0.2) == pytest.approx(obs.observed_latency_ms, rel=0.05)
        assert adjusted.w_max < curve.w_max

    def test_rescale_all_curves_only_touches_observed(self, curves):
        observations = [
            Observation(dip="d0", weight=0.2, observed_latency_ms=curves["d0"].predict(0.2) * 1.4)
        ]
        updated = rescale_all_curves(curves, observations)
        assert updated["d0"].w_max != curves["d0"].w_max
        assert updated["d1"] is curves["d1"]

    def test_rescale_all_preserves_keys(self, curves):
        updated = rescale_all_curves(curves, observations_at(curves, 0.2, 1.4))
        assert set(updated) == set(curves)


class TestRefreshBudget:
    def test_budget_is_fraction_of_capacity(self):
        budget = RefreshBudget(total_capacity=1000.0, max_refresh_fraction=0.05)
        assert budget.budget == pytest.approx(50.0)

    def test_start_within_budget(self):
        budget = RefreshBudget(total_capacity=1000.0)
        assert budget.can_start("a", 30.0)
        budget.start("a", 30.0)
        assert budget.used == pytest.approx(30.0)

    def test_exceeding_budget_rejected(self):
        budget = RefreshBudget(total_capacity=1000.0)
        budget.start("a", 40.0)
        assert not budget.can_start("b", 20.0)
        with pytest.raises(ConfigurationError):
            budget.start("b", 20.0)

    def test_finish_releases_budget(self):
        budget = RefreshBudget(total_capacity=1000.0)
        budget.start("a", 40.0)
        budget.finish("a")
        assert budget.can_start("b", 50.0)

    def test_restart_same_dip_allowed(self):
        budget = RefreshBudget(total_capacity=1000.0)
        budget.start("a", 40.0)
        assert budget.can_start("a", 40.0)

    def test_invalid_capacity(self):
        with pytest.raises(ConfigurationError):
            RefreshBudget(total_capacity=0.0)

"""Runner execution, RunResult serialization and reproducibility."""

from __future__ import annotations

import pytest

from repro.api import (
    ControllerSpec,
    ExperimentSpec,
    FleetSpec,
    PolicySpec,
    PoolSpec,
    RunResult,
    VmSpec,
    WorkloadSpec,
    execute,
    get_spec,
    list_specs,
    run,
    runner_for,
)
from repro.exceptions import ConfigurationError


def small_spec(**kwargs) -> ExperimentSpec:
    base = dict(
        name="small",
        runner="fluid",
        pool=PoolSpec(kind="uniform", num_dips=4, vm=VmSpec(vcpus=2)),
        workload=WorkloadSpec(load_fraction=0.5, num_requests=2_000, warmup_s=0.5),
        policy=PolicySpec(name="wrr"),
        controller=ControllerSpec(enabled=False),
        fleet=FleetSpec(num_vips=2),
        seed=9,
    )
    base.update(kwargs)
    return ExperimentSpec(**base)


class TestRunnersShareOneSpec:
    """The acceptance shape: one spec, three substrates, flip one field."""

    @pytest.mark.parametrize("kind", ["fluid", "request", "fleet"])
    def test_same_spec_runs_on_every_substrate(self, kind):
        result = run(small_spec().with_overrides({"runner": kind}))
        assert result.runner == kind
        assert result.seed == 9
        assert result.metrics["mean_latency_ms"] > 0
        assert result.dip_summaries  # every substrate reports per-DIP rows
        assert result.provenance.wall_clock_s >= 0

    def test_fluid_controller_reports_gain(self):
        result = run(
            get_spec("testbed_klb").with_overrides({"controller.settle_steps": 1})
        )
        assert result.metrics["latency_gain"] > 1.5
        assert result.detail is not None  # the programmed WeightAssignment

    @pytest.mark.parametrize("kind", ["fluid", "request", "fleet"])
    def test_controller_needs_weighted_policy_on_every_substrate(self, kind):
        # An unweighted policy would silently ignore the programmed weights,
        # so the spec itself rejects the combination — on every runner.
        with pytest.raises(ConfigurationError, match="weighted"):
            small_spec(
                runner=kind,
                policy=PolicySpec(name="rr"),
                controller=ControllerSpec(enabled=True),
            )

    def test_fleet_runner_honours_the_pool_spec(self):
        spec = small_spec(runner="fleet", pool=PoolSpec(kind="testbed"))
        result = run(spec)
        # The Table 3 testbed: 30 DIPs of four VM sizes, not a generic
        # uniform fleet — heterogeneous capacities must show through.
        assert len(result.dip_summaries) == 30
        rates = {round(row["rate_rps"], 6) for row in result.dip_summaries.values()}
        assert len(rates) > 1

    def test_request_runner_executes_control_steps(self):
        spec = small_spec(
            runner="request",
            controller=ControllerSpec(enabled=True, settle_steps=1, control_steps=2),
            workload=WorkloadSpec(load_fraction=0.5, num_requests=1_500),
        )
        result = run(spec)
        assert result.metrics["mean_latency_ms"] > 0

    def test_unknown_runner_kind(self):
        with pytest.raises(ConfigurationError, match="unknown runner"):
            runner_for("quantum")


class TestScenarioBridge:
    def test_registry_bridges_every_scenario(self):
        names = {name for name, _ in list_specs()}
        assert "single_vip_testbed" in names
        assert "multi_vip_shared_dips" in names

    def test_scenario_spec_runs_and_carries_metrics(self):
        spec = get_spec("single_vip_testbed")
        assert spec.runner == "scenario"
        result = execute(spec)
        assert result.metrics["latency_gain"] > 1.0
        assert result.detail is not None

    def test_scenario_seed_comes_from_spec_level(self):
        spec = get_spec("single_vip_testbed")
        assert "seed" not in spec.params
        assert spec.seed == 7  # the scenario's registered default

    def test_unknown_scenario_param_raises(self):
        spec = get_spec("single_vip_testbed").with_overrides({"bogus": 1})
        with pytest.raises(ConfigurationError, match="bogus"):
            execute(spec)

    def test_unknown_spec_name_lists_registry(self):
        with pytest.raises(ConfigurationError, match="registered specs"):
            get_spec("no_such_spec")


class TestResultArtifact:
    def test_serialization_is_stable(self, tmp_path):
        result = run(small_spec())
        path = result.save(tmp_path / "r.json")
        loaded = RunResult.load(path)
        assert loaded.to_json() == result.to_json()
        assert loaded.metrics == result.metrics
        assert loaded.dip_summaries == result.dip_summaries
        assert loaded.spec == result.spec

    def test_rejects_wrong_schema_and_broken_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema": "other/v9"}', encoding="utf-8")
        with pytest.raises(ConfigurationError, match="schema"):
            RunResult.load(path)
        path.write_text("{nope", encoding="utf-8")
        with pytest.raises(ConfigurationError, match="bad.json"):
            RunResult.load(path)

    def test_metrics_equal_tolerance(self, tmp_path):
        result = run(small_spec())
        loaded = RunResult.load(result.save(tmp_path / "r.json"))
        assert result.metrics_equal(loaded)
        bumped = RunResult(
            spec=result.spec,
            runner=result.runner,
            seed=result.seed,
            metrics={**result.metrics, "mean_latency_ms": result.metrics["mean_latency_ms"] * 1.5},
            dip_summaries=result.dip_summaries,
            provenance=result.provenance,
        )
        assert not result.metrics_equal(bumped)
        assert result.metrics_equal(bumped, rel_tol=0.6)


class TestReproducibility:
    """A saved artifact re-runs to identical metrics for the same seed."""

    @pytest.mark.parametrize("kind", ["fluid", "request"])
    def test_saved_spec_reproduces_metrics(self, kind, tmp_path):
        first = run(small_spec().with_overrides({"runner": kind}))
        loaded = RunResult.load(first.save(tmp_path / "first.json"))
        again = run(loaded.spec)
        assert again.metrics == first.metrics
        assert again.dip_summaries == first.dip_summaries

    def test_different_seed_changes_request_metrics(self):
        base = small_spec(runner="request")
        a = run(base)
        b = run(base.with_overrides({"seed": 10}))
        assert a.metrics["mean_latency_ms"] != b.metrics["mean_latency_ms"]

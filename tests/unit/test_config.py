"""Unit tests for repro.core.config."""

from __future__ import annotations

import pytest

from repro.core.config import (
    DEFAULT_CONFIG,
    CurveConfig,
    DynamicsConfig,
    ExplorationConfig,
    IlpConfig,
    KnapsackLBConfig,
    ProbeConfig,
    SchedulerConfig,
)
from repro.exceptions import ConfigurationError


class TestExplorationConfig:
    def test_defaults_match_paper(self):
        config = ExplorationConfig()
        assert config.convergence_fraction == pytest.approx(0.05)
        assert config.alpha == pytest.approx(1.0)
        assert config.drop_latency_multiplier == pytest.approx(5.0)

    @pytest.mark.parametrize("fraction", [0.0, 1.0, -0.1, 2.0])
    def test_invalid_convergence_fraction(self, fraction):
        with pytest.raises(ConfigurationError):
            ExplorationConfig(convergence_fraction=fraction)

    def test_invalid_alpha(self):
        with pytest.raises(ConfigurationError):
            ExplorationConfig(alpha=0.0)

    def test_invalid_drop_multiplier(self):
        with pytest.raises(ConfigurationError):
            ExplorationConfig(drop_latency_multiplier=1.0)

    def test_invalid_max_iterations(self):
        with pytest.raises(ConfigurationError):
            ExplorationConfig(max_iterations=0)


class TestCurveConfig:
    def test_defaults(self):
        config = CurveConfig()
        assert config.degree == 2
        assert config.enforce_monotone

    def test_invalid_degree(self):
        with pytest.raises(ConfigurationError):
            CurveConfig(degree=0)

    def test_invalid_min_points(self):
        with pytest.raises(ConfigurationError):
            CurveConfig(min_points=1)


class TestIlpConfig:
    def test_defaults_match_paper(self):
        config = IlpConfig()
        assert config.weights_per_dip == 10
        assert config.theta is None
        assert config.multistep_min_dips == 100
        assert config.refine_window_fraction == pytest.approx(0.10)

    def test_invalid_weights_per_dip(self):
        with pytest.raises(ConfigurationError):
            IlpConfig(weights_per_dip=1)

    def test_negative_theta_rejected(self):
        with pytest.raises(ConfigurationError):
            IlpConfig(theta=-0.1)

    def test_theta_zero_allowed(self):
        assert IlpConfig(theta=0.0).theta == 0.0

    def test_invalid_refine_window(self):
        with pytest.raises(ConfigurationError):
            IlpConfig(refine_window_fraction=0.0)

    def test_invalid_time_limit(self):
        with pytest.raises(ConfigurationError):
            IlpConfig(time_limit_s=0.0)


class TestDynamicsConfig:
    def test_defaults_match_paper(self):
        config = DynamicsConfig()
        assert config.capacity_change_threshold == pytest.approx(0.20)
        assert config.max_refresh_fraction == pytest.approx(0.05)
        assert config.drain_recalibration_interval_s == pytest.approx(7200.0)

    def test_invalid_threshold(self):
        with pytest.raises(ConfigurationError):
            DynamicsConfig(capacity_change_threshold=1.0)

    def test_invalid_quorum(self):
        with pytest.raises(ConfigurationError):
            DynamicsConfig(traffic_change_quorum=0.0)

    def test_invalid_failure_threshold(self):
        with pytest.raises(ConfigurationError):
            DynamicsConfig(failure_probe_threshold=0)

    def test_invalid_refresh_fraction(self):
        with pytest.raises(ConfigurationError):
            DynamicsConfig(max_refresh_fraction=1.5)


class TestProbeConfig:
    def test_defaults_match_paper(self):
        config = ProbeConfig()
        assert config.interval_s == pytest.approx(5.0)
        assert config.requests_per_probe == 100

    def test_invalid_interval(self):
        with pytest.raises(ConfigurationError):
            ProbeConfig(interval_s=0.0)

    def test_invalid_requests(self):
        with pytest.raises(ConfigurationError):
            ProbeConfig(requests_per_probe=0)

    def test_invalid_timeout(self):
        with pytest.raises(ConfigurationError):
            ProbeConfig(timeout_s=-1.0)


class TestSchedulerConfig:
    def test_defaults_match_paper(self):
        config = SchedulerConfig()
        assert config.round_duration_s == pytest.approx(10.0)

    def test_invalid_round_duration(self):
        with pytest.raises(ConfigurationError):
            SchedulerConfig(round_duration_s=0.0)

    def test_invalid_multiplier(self):
        with pytest.raises(ConfigurationError):
            SchedulerConfig(overutilized_latency_multiplier=1.0)


class TestKnapsackLBConfig:
    def test_default_control_interval(self):
        assert KnapsackLBConfig().control_interval_s == pytest.approx(5.0)

    def test_invalid_control_interval(self):
        with pytest.raises(ConfigurationError):
            KnapsackLBConfig(control_interval_s=0.0)

    def test_default_config_singleton_is_usable(self):
        assert DEFAULT_CONFIG.ilp.weights_per_dip == 10

    def test_sub_configs_composable(self):
        config = KnapsackLBConfig(ilp=IlpConfig(weights_per_dip=20, theta=0.5))
        assert config.ilp.weights_per_dip == 20
        assert config.probe.interval_s == pytest.approx(5.0)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            KnapsackLBConfig().control_interval_s = 1.0  # type: ignore[misc]


class TestConfigSerde:
    """to_dict/from_dict round-tripping of the config tree."""

    def test_round_trip_is_identity(self):
        config = KnapsackLBConfig(
            ilp=IlpConfig(weights_per_dip=12, theta=0.4),
            exploration=ExplorationConfig(alpha=2.0),
        )
        assert KnapsackLBConfig.from_dict(config.to_dict()) == config

    def test_to_dict_is_plain_data(self):
        import json

        json.dumps(KnapsackLBConfig().to_dict())  # must not raise

    def test_partial_dict_keeps_defaults(self):
        config = KnapsackLBConfig.from_dict({"ilp": {"weights_per_dip": 4}})
        assert config.ilp.weights_per_dip == 4
        assert config.ilp.backend == "auto"
        assert config.probe == ProbeConfig()

    def test_none_round_trips_for_optional_fields(self):
        config = KnapsackLBConfig.from_dict({"ilp": {"theta": None}})
        assert config.ilp.theta is None

    def test_unknown_field_names_dotted_path(self):
        with pytest.raises(ConfigurationError, match=r"config\.ilp\.wieghts"):
            KnapsackLBConfig.from_dict({"ilp": {"wieghts": 4}})

    def test_unknown_section_lists_valid_fields(self):
        with pytest.raises(ConfigurationError, match="exploration"):
            KnapsackLBConfig.from_dict({"explorations": {}})

    def test_invalid_value_error_carries_section(self):
        with pytest.raises(ConfigurationError, match=r"config\.ilp"):
            KnapsackLBConfig.from_dict({"ilp": {"weights_per_dip": 1}})

    def test_section_must_be_mapping(self):
        with pytest.raises(ConfigurationError, match="config.curve"):
            KnapsackLBConfig.from_dict({"curve": 3})

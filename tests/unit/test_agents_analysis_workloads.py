"""Unit tests for the agent baseline, analysis helpers and workload builders."""

from __future__ import annotations

import pytest

from repro.agents import CpuAgentBalancer
from repro.analysis import (
    LatencyStats,
    format_series,
    format_table,
    format_weights,
    group_mean,
    relative_gain,
    utilization_spread,
    weighted_mean,
    weights_ratio,
)
from repro.backends import DipServer, custom_vm_type
from repro.exceptions import ConfigurationError
from repro.sim import FluidCluster
from repro.workloads import (
    TABLE8_VIP_MIX,
    build_graded_three_dip_pool,
    build_heterogeneous_pair,
    build_testbed_cluster,
    build_testbed_dips,
    build_three_dip_pool,
    build_uniform_pool,
    table8_total_dips,
    table8_vip_counts,
)


def small_cluster(capacities=(400.0, 300.0), rate_fraction=0.7):
    dips = {}
    for index, capacity in enumerate(capacities):
        vm = custom_vm_type(f"vm{index}", vcpus=1, capacity_rps=capacity)
        dips[f"d{index}"] = DipServer(f"d{index}", vm, seed=index, jitter_fraction=0.0)
    total = sum(capacities)
    return FluidCluster(dips=dips, total_rate_rps=total * rate_fraction, policy_name="wrr")


class TestCpuAgentBalancer:
    def test_converges_to_uniform_utilization(self):
        cluster = small_cluster((400.0, 300.0, 200.0))
        balancer = CpuAgentBalancer(cluster, tolerance=0.02)
        balancer.run()
        assert balancer.converged
        utils = [s.cpu_utilization for s in cluster.dips.values()]
        assert max(utils) - min(utils) <= 0.03

    def test_needs_multiple_iterations(self):
        """§6.4: the CPU-feedback loop converges over several iterations."""
        cluster = small_cluster((400.0, 400.0, 400.0, 300.0))
        balancer = CpuAgentBalancer(cluster, tolerance=0.01)
        balancer.run()
        assert balancer.iterations_to_converge >= 2

    def test_spread_monotonically_non_increasing(self):
        cluster = small_cluster((400.0, 250.0))
        balancer = CpuAgentBalancer(cluster)
        history = balancer.run()
        spreads = [h.spread for h in history]
        assert spreads[-1] <= spreads[0]

    def test_weights_stay_normalised(self):
        cluster = small_cluster((400.0, 250.0))
        balancer = CpuAgentBalancer(cluster)
        for step in balancer.run():
            assert sum(step.weights.values()) == pytest.approx(1.0)

    def test_respects_initial_weights(self):
        cluster = small_cluster((400.0, 400.0))
        balancer = CpuAgentBalancer(cluster, max_iterations=1)
        history = balancer.run(initial_weights={"d0": 0.9, "d1": 0.1})
        assert history[0].weights["d0"] == pytest.approx(0.9)

    def test_invalid_config(self):
        cluster = small_cluster()
        with pytest.raises(ConfigurationError):
            CpuAgentBalancer(cluster, tolerance=0.0)
        with pytest.raises(ConfigurationError):
            CpuAgentBalancer(cluster, gain=0.0)


class TestAnalysis:
    def test_latency_stats(self):
        stats = LatencyStats.from_samples([1.0, 2.0, 3.0, 4.0])
        assert stats.count == 4
        assert stats.mean_ms == pytest.approx(2.5)
        assert stats.max_ms == pytest.approx(4.0)

    def test_latency_stats_empty(self):
        stats = LatencyStats.from_samples([])
        assert stats.count == 0

    def test_relative_gain(self):
        assert relative_gain(10.0, 5.5) == pytest.approx(0.45)
        with pytest.raises(ConfigurationError):
            relative_gain(0.0, 1.0)

    def test_utilization_spread(self):
        assert utilization_spread({"a": 0.9, "b": 0.4}) == pytest.approx(0.5)
        assert utilization_spread({}) == 0.0

    def test_weighted_mean(self):
        value = weighted_mean({"a": 10.0, "b": 20.0}, {"a": 0.25, "b": 0.75})
        assert value == pytest.approx(17.5)

    def test_group_mean(self):
        result = group_mean({"a": 1.0, "b": 3.0, "c": 10.0}, {"g1": ["a", "b"], "g2": ["c"]})
        assert result["g1"] == pytest.approx(2.0)

    def test_weights_ratio(self):
        ratios = weights_ratio(
            {"a": 0.01, "b": 0.02, "c": 0.10},
            {"small": ["a"], "medium": ["b"], "large": ["c"]},
        )
        assert ratios["small"] == pytest.approx(1.0)
        assert ratios["large"] == pytest.approx(10.0)

    def test_format_table(self):
        text = format_table(["x", "y"], [[1, 2.5], ["long-value", 3]], title="T")
        assert "T" in text
        assert "long-value" in text
        assert text.count("|") > 4

    def test_format_series(self):
        text = format_series("latency", {10: 1.5, 20: 2.5})
        assert "latency:" in text
        assert "10=1.500" in text

    def test_format_weights(self):
        text = format_weights({"b": 0.25, "a": 0.75})
        assert text.startswith("a=0.750")


class TestWorkloads:
    def test_testbed_composition_matches_table3(self):
        layout = build_testbed_dips()
        assert len(layout.dips) == 30
        by_type = layout.by_type()
        assert len(by_type["DS1v2"]) == 16
        assert len(by_type["DS2v2"]) == 8
        assert len(by_type["DS3v2"]) == 4
        assert len(by_type["F8sv2"]) == 2

    def test_testbed_by_core_count(self):
        groups = build_testbed_dips().by_core_count()
        assert set(groups) == {1, 2, 4, 8}

    def test_testbed_cluster_load_fraction(self):
        cluster = build_testbed_cluster(load_fraction=0.7)
        assert cluster.total_rate_rps == pytest.approx(cluster.total_capacity_rps * 0.7)

    def test_testbed_cluster_invalid_load(self):
        with pytest.raises(ConfigurationError):
            build_testbed_cluster(load_fraction=0.0)

    def test_three_dip_pool(self):
        dips = build_three_dip_pool(capacity_ratio=0.6)
        assert dips["DIP-LC"].capacity_rps == pytest.approx(
            dips["DIP-HC-1"].capacity_rps * 0.6
        )

    def test_three_dip_pool_invalid_ratio(self):
        with pytest.raises(ConfigurationError):
            build_three_dip_pool(capacity_ratio=0.0)

    def test_graded_three_dip_pool(self):
        dips = build_graded_three_dip_pool((1.0, 0.8, 0.6))
        capacities = sorted((d.capacity_rps for d in dips.values()), reverse=True)
        assert capacities[1] == pytest.approx(capacities[0] * 0.8)
        assert capacities[2] == pytest.approx(capacities[0] * 0.6)

    def test_heterogeneous_pair(self):
        dips = build_heterogeneous_pair()
        ratio = dips["DIP-F"].capacity_rps / dips["DIP-DS"].capacity_rps
        assert 1.1 <= ratio <= 1.25

    def test_uniform_pool(self):
        dips = build_uniform_pool(12)
        assert len(dips) == 12
        capacities = {round(d.capacity_rps, 3) for d in dips.values()}
        assert len(capacities) == 1

    def test_uniform_pool_invalid(self):
        with pytest.raises(ConfigurationError):
            build_uniform_pool(0)

    def test_table8_totals(self):
        assert table8_total_dips() == 60_000
        counts = table8_vip_counts()
        assert counts[5] == 2000
        assert sum(counts.values()) == sum(v for _, v in TABLE8_VIP_MIX)

"""Unit tests for the DIP substrate (VM types, latency model, antagonist, DIP)."""

from __future__ import annotations

import pytest

from repro.backends import (
    DS1_V2,
    DS2_V2,
    DS3_V2,
    DS4_V2,
    F8S_V2,
    Antagonist,
    DipServer,
    LatencyModel,
    all_vm_types,
    custom_vm_type,
    erlang_c,
    get_vm_type,
    scaled_model,
)
from repro.exceptions import ConfigurationError, DipFailureError


class TestVmTypes:
    def test_catalogue_lookup(self):
        assert get_vm_type("DS1v2") is DS1_V2
        with pytest.raises(KeyError):
            get_vm_type("unknown")

    def test_catalogue_complete(self):
        names = {vm.name for vm in all_vm_types()}
        assert {"DS1v2", "DS2v2", "DS3v2", "F8sv2"}.issubset(names)

    def test_capacity_grows_with_cores(self):
        assert DS1_V2.base_capacity_rps < DS2_V2.base_capacity_rps < DS3_V2.base_capacity_rps

    def test_ds_scaling_sublinear(self):
        """The paper notes multi-core DS VMs do not scale linearly."""
        per_core_1 = DS1_V2.base_capacity_rps / DS1_V2.vcpus
        per_core_4 = DS3_V2.base_capacity_rps / DS3_V2.vcpus
        assert per_core_4 < per_core_1

    def test_f_series_15_to_20_percent_faster(self):
        """§2.2/§6: F-series ~15-20 % faster than DS at equal core count."""
        ratio = F8S_V2.base_capacity_rps / DS4_V2.base_capacity_rps
        assert 1.14 <= ratio <= 1.21

    def test_f_series_lower_idle_latency(self):
        assert F8S_V2.idle_latency_ms < DS4_V2.idle_latency_ms

    def test_idle_latency_consistent_with_capacity(self):
        """service-time × capacity == vcpus (M/M/c consistency)."""
        for vm in all_vm_types():
            implied_cores = vm.idle_latency_ms / 1000.0 * vm.base_capacity_rps
            assert implied_cores == pytest.approx(vm.vcpus, rel=1e-6)

    def test_custom_vm_type(self):
        vm = custom_vm_type("tiny", vcpus=1, capacity_rps=100.0)
        assert vm.base_capacity_rps == 100.0

    def test_invalid_vm(self):
        with pytest.raises(ConfigurationError):
            custom_vm_type("bad", vcpus=0, capacity_rps=100.0)


class TestErlangC:
    def test_zero_load(self):
        assert erlang_c(4, 0.0) == 0.0

    def test_saturated(self):
        assert erlang_c(4, 4.0) == 1.0

    def test_single_server_equals_utilization(self):
        # For M/M/1, P(queue) = rho.
        assert erlang_c(1, 0.5) == pytest.approx(0.5)

    def test_monotone_in_load(self):
        values = [erlang_c(4, load) for load in (0.5, 1.0, 2.0, 3.0, 3.9)]
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_more_servers_less_queueing(self):
        # Same utilization (50 %), more servers → lower queueing probability.
        assert erlang_c(8, 4.0) < erlang_c(2, 1.0)

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            erlang_c(0, 1.0)
        with pytest.raises(ConfigurationError):
            erlang_c(2, -1.0)


class TestLatencyModel:
    @pytest.fixture
    def model(self):
        return LatencyModel(servers=2, capacity_rps=800.0, idle_latency_ms=2.5)

    def test_idle_latency_at_zero_load(self, model):
        assert model.mean_latency_ms(0.0) == pytest.approx(2.5)

    def test_latency_flat_at_low_load(self, model):
        """Fig. 5: minimal latency increase while CPU has headroom."""
        assert model.mean_latency_ms(200.0) < 2.5 * 1.3

    def test_latency_rises_steeply_near_capacity(self, model):
        at_60 = model.mean_latency_ms(0.6 * 800)
        at_95 = model.mean_latency_ms(0.95 * 800)
        assert at_95 > at_60 * 2

    def test_latency_monotone_in_rate(self, model):
        rates = [0, 100, 300, 500, 700, 780, 900]
        latencies = [model.mean_latency_ms(r) for r in rates]
        assert all(b >= a for a, b in zip(latencies, latencies[1:]))

    def test_latency_bounded_past_saturation(self, model):
        assert model.mean_latency_ms(2000.0) < 1000.0

    def test_utilization(self, model):
        assert model.utilization(400.0) == pytest.approx(0.5)

    def test_no_drops_below_95_percent(self, model):
        assert model.drop_probability(0.9 * 800) == 0.0

    def test_drops_above_capacity(self, model):
        assert model.drop_probability(1.2 * 800) > 0.0

    def test_drop_probability_grows_with_overload(self, model):
        assert model.drop_probability(1.5 * 800) > model.drop_probability(1.1 * 800)

    def test_ping_latency_flat(self, model):
        """Fig. 5: ICMP/TCP pings do not reflect application load."""
        idle_ping = model.ping_latency_ms(0.0)
        loaded_ping = model.ping_latency_ms(0.9 * 800)
        assert loaded_ping == pytest.approx(idle_ping, rel=0.05)

    def test_max_rate_for_latency_inverse(self, model):
        target = model.mean_latency_ms(600.0)
        recovered = model.max_rate_for_latency(target)
        assert recovered == pytest.approx(600.0, rel=0.02)

    def test_latency_at_utilization(self, model):
        assert model.latency_at_utilization(0.5) == pytest.approx(
            model.mean_latency_ms(400.0)
        )

    def test_scaled_model_shrinks_capacity(self, model):
        scaled = scaled_model(model, 0.6)
        assert scaled.capacity_rps == pytest.approx(480.0)
        assert scaled.idle_latency_ms > model.idle_latency_ms

    def test_scaled_model_higher_latency_same_rate(self, model):
        scaled = scaled_model(model, 0.6)
        assert scaled.mean_latency_ms(400.0) > model.mean_latency_ms(400.0)

    def test_scaled_model_invalid_factor(self, model):
        with pytest.raises(ConfigurationError):
            scaled_model(model, 0.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LatencyModel(servers=0, capacity_rps=100.0, idle_latency_ms=1.0)
        with pytest.raises(ConfigurationError):
            LatencyModel(servers=1, capacity_rps=0.0, idle_latency_ms=1.0)


class TestAntagonist:
    def test_no_copies_full_capacity(self):
        assert Antagonist().capacity_factor == 1.0

    def test_copies_reduce_capacity(self):
        antagonist = Antagonist(per_copy_loss=0.1)
        antagonist.set_copies(2)
        assert antagonist.capacity_factor == pytest.approx(0.81)

    def test_override_pins_exact_ratio(self):
        antagonist = Antagonist()
        antagonist.set_capacity_ratio(0.6)
        assert antagonist.capacity_factor == pytest.approx(0.6)

    def test_clear_restores(self):
        antagonist = Antagonist()
        antagonist.set_capacity_ratio(0.6)
        antagonist.clear()
        assert antagonist.capacity_factor == 1.0

    def test_history_recorded(self):
        antagonist = Antagonist()
        antagonist.set_capacity_ratio(0.75, at_time=10.0)
        antagonist.clear(at_time=20.0)
        assert antagonist.history == [(10.0, 0.75), (20.0, 1.0)]

    def test_copies_for_ratio(self):
        antagonist = Antagonist(per_copy_loss=0.1)
        copies = antagonist.copies_for_ratio(0.75)
        assert (1 - 0.1) ** copies <= 0.75
        assert (1 - 0.1) ** (copies - 1) > 0.75

    def test_invalid_ratio(self):
        with pytest.raises(ConfigurationError):
            Antagonist().set_capacity_ratio(0.0)

    def test_invalid_copies(self):
        with pytest.raises(ConfigurationError):
            Antagonist().set_copies(-1)


class TestDipServer:
    @pytest.fixture
    def dip(self, small_vm):
        return DipServer("d1", small_vm, seed=5, jitter_fraction=0.0)

    def test_capacity_matches_vm_type(self, dip, small_vm):
        assert dip.capacity_rps == pytest.approx(small_vm.base_capacity_rps)

    def test_capacity_ratio_reduces_capacity(self, dip):
        dip.set_capacity_ratio(0.6)
        assert dip.capacity_rps == pytest.approx(240.0)
        dip.reset_capacity()
        assert dip.capacity_rps == pytest.approx(400.0)

    def test_cpu_utilization_tracks_offered_rate(self, dip):
        dip.set_offered_rate(200.0)
        assert dip.cpu_utilization == pytest.approx(0.5)

    def test_cpu_utilization_saturates_at_one(self, dip):
        dip.set_offered_rate(800.0)
        assert dip.cpu_utilization == 1.0

    def test_mean_latency_increases_with_load(self, dip):
        dip.set_offered_rate(100.0)
        low = dip.mean_latency_ms
        dip.set_offered_rate(380.0)
        assert dip.mean_latency_ms > low

    def test_request_sampling_no_jitter_equals_mean(self, dip):
        dip.set_offered_rate(200.0)
        assert dip.sample_request_latency_ms() == pytest.approx(dip.mean_latency_ms)

    def test_request_sampling_with_jitter_varies(self, small_vm):
        dip = DipServer("d2", small_vm, seed=5, jitter_fraction=0.2)
        dip.set_offered_rate(200.0)
        samples = {round(dip.sample_request_latency_ms(), 6) for _ in range(10)}
        assert len(samples) > 1

    def test_ping_latency_independent_of_load(self, dip):
        dip.set_offered_rate(0.0)
        idle = dip.sample_ping_latency_ms()
        dip.set_offered_rate(390.0)
        loaded = dip.sample_ping_latency_ms()
        assert loaded == pytest.approx(idle, rel=0.3)
        assert loaded < dip.mean_latency_ms

    def test_probe_batch_reports_mean(self, dip):
        dip.set_offered_rate(200.0)
        result = dip.serve_probe_batch(50)
        assert result.samples == 50
        assert result.mean_latency_ms == pytest.approx(dip.mean_latency_ms, rel=0.05)
        assert not result.dropped

    def test_probe_batch_drops_when_overloaded(self, dip):
        dip.set_offered_rate(1200.0)
        result = dip.serve_probe_batch(200)
        assert result.dropped
        assert result.drop_fraction > 0

    def test_failed_dip_raises(self, dip):
        dip.fail()
        with pytest.raises(DipFailureError):
            dip.serve_probe_batch(10)
        with pytest.raises(DipFailureError):
            dip.sample_request_latency_ms()
        dip.recover()
        dip.serve_probe_batch(10)

    def test_failed_dip_zero_utilization(self, dip):
        dip.set_offered_rate(200.0)
        dip.fail()
        assert dip.cpu_utilization == 0.0

    def test_negative_rate_rejected(self, dip):
        with pytest.raises(ConfigurationError):
            dip.set_offered_rate(-1.0)

    def test_probe_batch_validates_count(self, dip):
        with pytest.raises(ConfigurationError):
            dip.serve_probe_batch(0)

"""Unit tests for repro.core.types."""

from __future__ import annotations

import math

import pytest

from repro.core.types import (
    DipRecord,
    LatencySample,
    MeasurementPoint,
    WeightAssignment,
    equal_weights,
    normalize_weights,
    validate_weight,
)
from repro.exceptions import ConfigurationError


class TestValidateWeight:
    def test_accepts_zero(self):
        assert validate_weight(0.0) == 0.0

    def test_accepts_one(self):
        assert validate_weight(1.0) == 1.0

    def test_accepts_interior(self):
        assert validate_weight(0.37) == pytest.approx(0.37)

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            validate_weight(-0.01)

    def test_rejects_above_one(self):
        with pytest.raises(ConfigurationError):
            validate_weight(1.01)

    def test_rejects_nan(self):
        with pytest.raises(ConfigurationError):
            validate_weight(math.nan)

    def test_message_mentions_name(self):
        with pytest.raises(ConfigurationError, match="my_weight"):
            validate_weight(2.0, name="my_weight")


class TestLatencySample:
    def test_valid_sample(self):
        sample = LatencySample(dip="d1", latency_ms=3.2, timestamp=10.0, weight=0.1)
        assert sample.dip == "d1"
        assert not sample.dropped

    def test_rejects_negative_latency(self):
        with pytest.raises(ConfigurationError):
            LatencySample(dip="d1", latency_ms=-1.0, timestamp=0.0)

    def test_rejects_bad_weight(self):
        with pytest.raises(ConfigurationError):
            LatencySample(dip="d1", latency_ms=1.0, timestamp=0.0, weight=1.5)

    def test_is_frozen(self):
        sample = LatencySample(dip="d1", latency_ms=3.2, timestamp=10.0)
        with pytest.raises(AttributeError):
            sample.latency_ms = 5.0  # type: ignore[misc]


class TestMeasurementPoint:
    def test_valid(self):
        point = MeasurementPoint(weight=0.2, latency_ms=5.0)
        assert not point.dropped

    def test_rejects_negative_latency(self):
        with pytest.raises(ConfigurationError):
            MeasurementPoint(weight=0.2, latency_ms=-5.0)

    def test_rejects_out_of_range_weight(self):
        with pytest.raises(ConfigurationError):
            MeasurementPoint(weight=1.2, latency_ms=5.0)


class TestWeightAssignment:
    def test_total_weight(self):
        a = WeightAssignment(vip="v", weights={"a": 0.4, "b": 0.6})
        assert a.total_weight == pytest.approx(1.0)
        assert a.is_normalized()

    def test_not_normalized(self):
        a = WeightAssignment(vip="v", weights={"a": 0.4, "b": 0.4})
        assert not a.is_normalized()

    def test_normalized_rescales(self):
        a = WeightAssignment(vip="v", weights={"a": 0.4, "b": 0.4})
        n = a.normalized()
        assert n.total_weight == pytest.approx(1.0)
        assert n.weights["a"] == pytest.approx(0.5)

    def test_normalized_all_zero_raises(self):
        a = WeightAssignment(vip="v", weights={"a": 0.0, "b": 0.0})
        with pytest.raises(ConfigurationError):
            a.normalized()

    def test_weight_for_missing_dip_is_zero(self):
        a = WeightAssignment(vip="v", weights={"a": 1.0})
        assert a.weight_for("missing") == 0.0

    def test_imbalance(self):
        a = WeightAssignment(vip="v", weights={"a": 0.7, "b": 0.2, "c": 0.1})
        assert a.imbalance() == pytest.approx(0.6)

    def test_imbalance_empty(self):
        a = WeightAssignment(vip="v", weights={})
        assert a.imbalance() == 0.0

    def test_rejects_invalid_weight(self):
        with pytest.raises(ConfigurationError):
            WeightAssignment(vip="v", weights={"a": 1.4})


class TestNormalizeWeights:
    def test_basic(self):
        result = normalize_weights({"a": 2.0, "b": 2.0})
        assert result == {"a": 0.5, "b": 0.5}

    def test_zero_sum_raises(self):
        with pytest.raises(ConfigurationError):
            normalize_weights({"a": 0.0})

    def test_preserves_ratios(self):
        result = normalize_weights({"a": 1.0, "b": 3.0})
        assert result["b"] == pytest.approx(3 * result["a"])


class TestEqualWeights:
    def test_three_dips(self):
        result = equal_weights(["a", "b", "c"])
        assert all(w == pytest.approx(1 / 3) for w in result.values())

    def test_empty(self):
        assert equal_weights([]) == {}

    def test_sums_to_one(self):
        result = equal_weights([f"d{i}" for i in range(7)])
        assert sum(result.values()) == pytest.approx(1.0)


class TestDipRecord:
    def test_usable_points_filters_drops(self):
        record = DipRecord(dip="d", vip="v")
        record.points.append(MeasurementPoint(weight=0.1, latency_ms=2.0))
        record.points.append(MeasurementPoint(weight=0.2, latency_ms=9.0, dropped=True))
        usable = record.usable_points()
        assert len(usable) == 1
        assert usable[0].weight == pytest.approx(0.1)

    def test_defaults(self):
        record = DipRecord(dip="d", vip="v")
        assert record.current_weight == 0.0
        assert not record.exploration_done
        assert not record.failed

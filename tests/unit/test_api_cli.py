"""End-to-end coverage of the ``python -m repro`` command line."""

from __future__ import annotations

import json

import pytest

from repro.api import RunResult
from repro.api.cli import main


def run_cli(capsys, *argv: str) -> str:
    code = main(list(argv))
    captured = capsys.readouterr()
    assert code == 0, f"exit {code}; stderr: {captured.err}"
    return captured.out


class TestList:
    def test_lists_bridged_scenarios_and_builtins(self, capsys):
        out = run_cli(capsys, "list")
        assert "multi_vip_shared_dips" in out
        assert "testbed_klb" in out
        assert "fluid_uniform_pool" in out


class TestShow:
    def test_show_prints_resolved_json(self, capsys):
        out = run_cli(capsys, "show", "fluid_uniform_pool")
        data = json.loads(out)
        assert data["runner"] == "fluid"
        assert data["pool"]["num_dips"] == 8

    def test_show_applies_set_overrides(self, capsys):
        out = run_cli(
            capsys, "show", "fluid_uniform_pool",
            "--set", "workload.load_fraction=0.42",
            "--set", "policy.name=wlc",
        )
        data = json.loads(out)
        assert data["workload"]["load_fraction"] == 0.42
        assert data["policy"]["name"] == "wlc"

    def test_show_accepts_spec_files(self, capsys, tmp_path):
        path = tmp_path / "s.json"
        path.write_text(json.dumps({"name": "from-file", "seed": 5}))
        out = run_cli(capsys, "show", str(path))
        assert json.loads(out)["seed"] == 5


class TestRun:
    def test_run_writes_a_loadable_artifact(self, capsys, tmp_path):
        out_file = tmp_path / "out.json"
        out = run_cli(
            capsys, "run", "fluid_uniform_pool",
            "--set", "controller.enabled=false",
            "-o", str(out_file),
        )
        assert "mean_latency_ms" in out
        result = RunResult.load(out_file)
        assert result.runner == "fluid"
        assert result.metrics["mean_latency_ms"] > 0

    def test_runner_flag_flips_substrate(self, capsys, tmp_path):
        out_file = tmp_path / "req.json"
        run_cli(
            capsys, "run", "fluid_uniform_pool",
            "--set", "controller.enabled=false",
            "--set", "workload.num_requests=1500",
            "--runner", "request",
            "-o", str(out_file),
        )
        assert RunResult.load(out_file).runner == "request"

    def test_format_json_emits_the_artifact_on_stdout(self, capsys):
        code = main(
            [
                "run", "fluid_uniform_pool",
                "--set", "controller.enabled=false",
                "--format", "json",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        # stdout is exactly one RunResult document — pipeline-composable
        result = RunResult.from_dict(json.loads(captured.out))
        assert result.runner == "fluid"
        assert result.metrics["mean_latency_ms"] > 0

    def test_format_json_keeps_notes_off_stdout(self, capsys, tmp_path):
        out_file = tmp_path / "res.json"
        code = main(
            [
                "run", "fluid_uniform_pool",
                "--set", "controller.enabled=false",
                "--format", "json",
                "--watch",
                "-o", str(out_file),
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        json.loads(captured.out)  # still pure JSON despite watch + -o
        assert "result written" in captured.err
        assert out_file.exists()

    def test_scenario_set_overrides_params(self, capsys, tmp_path):
        out_file = tmp_path / "scen.json"
        run_cli(
            capsys, "run", "single_vip_testbed",
            "--set", "load_fraction=0.5",
            "-o", str(out_file),
        )
        result = RunResult.load(out_file)
        assert result.spec.params["load_fraction"] == 0.5
        assert result.metrics["latency_gain"] > 1.0


class TestValidate:
    def test_valid_spec_file_exits_zero(self, capsys, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps({
            "name": "timed",
            "timeline": {
                "window_s": 5.0,
                "events": [
                    {"time_s": 10.0, "kind": "dip_fail", "dip": "DIP-1"},
                ],
            },
        }))
        out = run_cli(capsys, "validate", str(path))
        assert "is valid" in out
        assert "1 timeline event(s)" in out

    def test_invalid_timeline_exits_nonzero_with_dotted_path(self, capsys, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({
            "name": "timed",
            "timeline": {
                "events": [
                    {"time_s": 10.0, "kind": "dip_fail", "dipz": "DIP-1"},
                ],
            },
        }))
        code = main(["validate", str(path)])
        captured = capsys.readouterr()
        assert code == 2
        assert "timeline.events[0].dipz" in captured.err

    def test_validate_never_runs_anything(self, capsys):
        # The biggest registered scenario validates in well under a run.
        out = run_cli(capsys, "validate", "multi_vip_shared_dips")
        assert "no timeline" in out


class TestRunWatch:
    def test_watch_streams_events_and_windows_to_stderr(self, capsys, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps({
            "name": "timed",
            "controller": {"enabled": False},
            "pool": {"num_dips": 4},
            "timeline": {
                "window_s": 5.0,
                "horizon_s": 20.0,
                "events": [
                    {"time_s": 10.0, "kind": "arrival_scale", "value": 1.5},
                ],
            },
        }))
        code = main(["run", str(path), "--watch"])
        captured = capsys.readouterr()
        assert code == 0
        assert "event   t=10s arrival_scale 1.5" in captured.err
        assert captured.err.count("window") == 4


class TestSweepAndCompare:
    def test_sweep_writes_artifacts_and_comparison(self, capsys, tmp_path):
        out_dir = tmp_path / "sweep"
        out = run_cli(
            capsys, "sweep", "fluid_uniform_pool",
            "--set", "controller.enabled=false",
            "--axis", "workload.load_fraction=0.4,0.6",
            "-o", str(out_dir),
        )
        assert "mean_latency_ms" in out
        results = sorted(out_dir.glob("result-*.json"))
        assert len(results) == 2
        comparison = json.loads((out_dir / "comparison.json").read_text())
        assert len(comparison["names"]) == 2

    def test_compare_saved_artifacts(self, capsys, tmp_path):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        run_cli(capsys, "run", "fluid_uniform_pool",
                "--set", "controller.enabled=false", "-o", str(a))
        run_cli(capsys, "run", "fluid_uniform_pool",
                "--set", "controller.enabled=false",
                "--set", "workload.load_fraction=0.8", "-o", str(b))
        out = run_cli(capsys, "compare", str(a), str(b), "-o",
                      str(tmp_path / "cmp.json"))
        assert "mean_latency_ms" in out
        assert (tmp_path / "cmp.json").exists()

    def test_compare_windows_renders_trajectories(self, capsys, tmp_path):
        spec = tmp_path / "spec.json"
        spec.write_text(json.dumps({
            "name": "timed",
            "controller": {"enabled": False},
            "pool": {"num_dips": 4},
            "timeline": {
                "window_s": 5.0,
                "horizon_s": 15.0,
                "events": [
                    {"time_s": 5.0, "kind": "capacity_ratio",
                     "dip": "DIP-1", "value": 0.5},
                ],
            },
        }))
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        run_cli(capsys, "run", str(spec), "-o", str(a))
        run_cli(capsys, "run", str(spec),
                "--set", "timeline.events=[]", "-o", str(b))
        out = run_cli(capsys, "compare", str(a), str(b), "--windows")
        assert "mean_latency_ms per window" in out
        assert "[5, 10)" in out
        assert "capacity_ratio DIP-1" in out

    def test_compare_windows_without_windows_is_an_error(self, capsys, tmp_path):
        a = tmp_path / "a.json"
        run_cli(capsys, "run", "fluid_uniform_pool",
                "--set", "controller.enabled=false", "-o", str(a))
        code = main(["compare", str(a), "--windows"])
        captured = capsys.readouterr()
        assert code == 2
        assert "no timeline ran" in captured.err


class TestErrors:
    @pytest.mark.parametrize(
        "argv",
        [
            ("run", "no_such_spec"),
            ("run", "fluid_uniform_pool", "--set", "garbage"),
            ("run", "fluid_uniform_pool", "--set", "pool.num_dips=0"),
            ("sweep", "fluid_uniform_pool", "--axis", "broken"),
            ("compare", "/does/not/exist.json"),
        ],
    )
    def test_errors_exit_2_with_message(self, capsys, argv):
        code = main(list(argv))
        captured = capsys.readouterr()
        assert code == 2
        assert captured.err.startswith("error:")

"""Unit tests for KLM probing and the latency store."""

from __future__ import annotations

import pytest

from repro.backends import DipServer, custom_vm_type
from repro.core.config import ProbeConfig
from repro.core.types import LatencySample
from repro.exceptions import ConfigurationError
from repro.probing import KLM, KLM_REQUESTS_PER_SECOND_PER_CORE, LatencyStore


def make_dip(name="d1", capacity=400.0, seed=1):
    vm = custom_vm_type("probe-vm", vcpus=1, capacity_rps=capacity)
    return DipServer(name, vm, seed=seed, jitter_fraction=0.0)


class TestLatencyStore:
    def test_write_and_latest(self):
        store = LatencyStore()
        store.write("vip", LatencySample(dip="d1", latency_ms=3.0, timestamp=1.0))
        store.write("vip", LatencySample(dip="d1", latency_ms=4.0, timestamp=2.0))
        latest = store.latest("vip", "d1")
        assert latest is not None
        assert latest.latency_ms == pytest.approx(4.0)

    def test_latest_missing(self):
        assert LatencyStore().latest("vip", "d1") is None

    def test_samples_filtered_by_dip_and_time(self):
        store = LatencyStore()
        store.write("vip", LatencySample(dip="d1", latency_ms=3.0, timestamp=1.0))
        store.write("vip", LatencySample(dip="d2", latency_ms=5.0, timestamp=2.0))
        store.write("vip", LatencySample(dip="d1", latency_ms=4.0, timestamp=3.0))
        assert len(store.samples("vip", "d1")) == 2
        assert len(store.samples("vip", since=2.0)) == 2

    def test_samples_sorted_by_time(self):
        store = LatencyStore()
        store.write("vip", LatencySample(dip="d1", latency_ms=3.0, timestamp=5.0))
        store.write("vip", LatencySample(dip="d2", latency_ms=3.0, timestamp=1.0))
        samples = store.samples("vip")
        assert [s.timestamp for s in samples] == [1.0, 5.0]

    def test_latest_per_dip(self):
        store = LatencyStore()
        store.write("vip", LatencySample(dip="d1", latency_ms=3.0, timestamp=1.0))
        store.write("vip", LatencySample(dip="d2", latency_ms=5.0, timestamp=2.0))
        latest = store.latest_per_dip("vip")
        assert set(latest) == {"d1", "d2"}

    def test_retention_limit(self):
        store = LatencyStore(max_samples_per_dip=5)
        for index in range(20):
            store.write("vip", LatencySample(dip="d1", latency_ms=1.0, timestamp=index))
        assert store.sample_count("vip") == 5
        assert store.stats.evictions > 0

    def test_vips_and_dips(self):
        store = LatencyStore()
        store.write("vip-a", LatencySample(dip="d1", latency_ms=1.0, timestamp=0.0))
        store.write("vip-b", LatencySample(dip="d9", latency_ms=1.0, timestamp=0.0))
        assert set(store.vips()) == {"vip-a", "vip-b"}
        assert store.dips("vip-b") == ("d9",)

    def test_clear(self):
        store = LatencyStore()
        store.write("vip", LatencySample(dip="d1", latency_ms=1.0, timestamp=0.0))
        store.clear("vip")
        assert store.sample_count() == 0

    def test_stats_counters(self):
        store = LatencyStore()
        store.write("vip", LatencySample(dip="d1", latency_ms=1.0, timestamp=0.0))
        store.latest("vip", "d1")
        assert store.stats.writes == 1
        assert store.stats.reads == 1

    def test_invalid_retention(self):
        with pytest.raises(ConfigurationError):
            LatencyStore(max_samples_per_dip=0)


class TestKLM:
    def make_klm(self, dips, **probe_kwargs):
        store = LatencyStore()
        return (
            KLM(
                vip="vip-1",
                dips=dips,
                store=store,
                config=ProbeConfig(**probe_kwargs) if probe_kwargs else ProbeConfig(),
            ),
            store,
        )

    def test_probe_writes_sample(self):
        dip = make_dip()
        dip.set_offered_rate(200.0)
        klm, store = self.make_klm({"d1": dip})
        outcome = klm.probe_dip("d1", now=10.0)
        assert not outcome.failed
        assert outcome.latency_ms == pytest.approx(dip.mean_latency_ms, rel=0.05)
        assert store.latest("vip-1", "d1") is not None

    def test_probe_latency_reflects_load(self):
        dip = make_dip()
        klm, _ = self.make_klm({"d1": dip})
        dip.set_offered_rate(50.0)
        light = klm.probe_dip("d1", now=0.0).latency_ms
        dip.set_offered_rate(380.0)
        heavy = klm.probe_dip("d1", now=5.0).latency_ms
        assert heavy > light

    def test_probe_all(self):
        dips = {f"d{i}": make_dip(f"d{i}", seed=i) for i in range(3)}
        klm, store = self.make_klm(dips)
        outcomes = klm.probe_all(now=0.0)
        assert set(outcomes) == set(dips)
        assert store.sample_count("vip-1") == 3

    def test_failed_dip_recorded(self):
        dip = make_dip()
        dip.fail()
        klm, store = self.make_klm({"d1": dip})
        outcome = klm.probe_dip("d1", now=0.0)
        assert outcome.failed
        assert store.sample_count("vip-1") == 0
        assert klm.consecutive_failures["d1"] == 1

    def test_failure_counter_resets_on_success(self):
        dip = make_dip()
        klm, _ = self.make_klm({"d1": dip})
        dip.fail()
        klm.probe_dip("d1", now=0.0)
        dip.recover()
        klm.probe_dip("d1", now=5.0)
        assert klm.consecutive_failures["d1"] == 0

    def test_failures_threshold(self):
        dip = make_dip()
        dip.fail()
        klm, _ = self.make_klm({"d1": dip})
        for tick in range(3):
            klm.probe_dip("d1", now=float(tick))
        assert klm.failures(3) == ("d1",)
        assert klm.failures(4) == ()

    def test_overloaded_probe_marks_drop(self):
        dip = make_dip()
        dip.set_offered_rate(1500.0)
        klm, _ = self.make_klm({"d1": dip})
        outcome = klm.probe_dip("d1", now=0.0)
        assert outcome.dropped

    def test_probe_rate_and_cores(self):
        dips = {f"d{i}": make_dip(f"d{i}", seed=i) for i in range(225)}
        klm, _ = self.make_klm(dips, interval_s=5.0, requests_per_probe=100)
        assert klm.probe_rate_rps() == pytest.approx(225 * 20.0)
        assert klm.cores_required() == pytest.approx(1.0, rel=0.01)
        assert klm.max_dips_per_core() == 225

    def test_constant_matches_paper(self):
        assert KLM_REQUESTS_PER_SECOND_PER_CORE == pytest.approx(4500.0)

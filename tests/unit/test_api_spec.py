"""Spec construction, validation, file loading and overrides."""

from __future__ import annotations

import json

import pytest

from repro.api import (
    ControllerSpec,
    ExperimentSpec,
    FleetSpec,
    PolicySpec,
    PoolSpec,
    VmSpec,
    WorkloadSpec,
)
from repro.core.config import KnapsackLBConfig
from repro.exceptions import ConfigurationError


def sample_spec(**kwargs) -> ExperimentSpec:
    base = dict(
        name="sample",
        runner="fluid",
        pool=PoolSpec(kind="uniform", num_dips=4, vm=VmSpec(vcpus=2)),
        workload=WorkloadSpec(load_fraction=0.5, num_requests=2_000),
        policy=PolicySpec(name="wrr"),
        controller=ControllerSpec(enabled=False),
        fleet=FleetSpec(num_vips=2),
        seed=9,
    )
    base.update(kwargs)
    return ExperimentSpec(**base)


class TestRoundTrip:
    def test_dict_round_trip_is_identity(self):
        spec = sample_spec()
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec

    def test_json_file_round_trip(self, tmp_path):
        spec = sample_spec()
        path = spec.save(tmp_path / "spec.json")
        assert ExperimentSpec.from_file(path) == spec

    def test_json_text_is_stable(self):
        spec = sample_spec()
        assert spec.to_json() == ExperimentSpec.from_dict(spec.to_dict()).to_json()

    def test_toml_file_round_trip(self, tmp_path):
        spec = sample_spec()
        path = tmp_path / "spec.toml"
        path.write_text(_as_toml(spec.to_dict()), encoding="utf-8")
        assert ExperimentSpec.from_file(path) == spec

    def test_partial_dict_fills_defaults(self):
        spec = ExperimentSpec.from_dict({"name": "tiny"})
        assert spec.runner == "fluid"
        assert spec.pool == PoolSpec()
        assert spec.controller.config == KnapsackLBConfig()

    def test_nested_controller_config_round_trips(self):
        spec = sample_spec(
            controller=ControllerSpec(
                enabled=True,
                config=KnapsackLBConfig.from_dict({"ilp": {"weights_per_dip": 6}}),
            )
        )
        again = ExperimentSpec.from_dict(spec.to_dict())
        assert again.controller.config.ilp.weights_per_dip == 6
        assert again == spec


class TestValidation:
    def test_unknown_top_level_field_names_the_key(self):
        with pytest.raises(ConfigurationError, match="runnner"):
            ExperimentSpec.from_dict({"name": "x", "runnner": "fluid"})

    def test_unknown_nested_field_names_the_dotted_path(self):
        with pytest.raises(ConfigurationError, match=r"pool\.num_dipz"):
            ExperimentSpec.from_dict({"name": "x", "pool": {"num_dipz": 4}})

    def test_bad_value_error_names_the_field(self):
        with pytest.raises(ConfigurationError, match="pool.num_dips"):
            ExperimentSpec.from_dict({"name": "x", "pool": {"num_dips": 0}})
        with pytest.raises(ConfigurationError, match="workload.load_fraction"):
            WorkloadSpec(load_fraction=2.5)
        with pytest.raises(ConfigurationError, match="fleet.num_vips"):
            FleetSpec(num_vips=0)

    def test_unknown_policy_lists_known_names(self):
        with pytest.raises(ConfigurationError, match="wrr"):
            PolicySpec(name="nope")

    def test_unknown_runner_and_pool_kind(self):
        with pytest.raises(ConfigurationError, match="runner"):
            sample_spec(runner="quantum")
        with pytest.raises(ConfigurationError, match="pool.kind"):
            PoolSpec(kind="nope")

    def test_scenario_requires_scenario_runner(self):
        with pytest.raises(ConfigurationError, match="scenario"):
            sample_spec(scenario="single_vip_testbed")  # runner stays fluid
        with pytest.raises(ConfigurationError, match="scenario"):
            sample_spec(runner="scenario")  # no scenario named

    def test_section_must_be_mapping(self):
        with pytest.raises(ConfigurationError, match="pool"):
            ExperimentSpec.from_dict({"name": "x", "pool": 7})

    def test_missing_file_and_bad_suffix(self, tmp_path):
        with pytest.raises(ConfigurationError, match="does not exist"):
            ExperimentSpec.from_file(tmp_path / "nope.json")
        path = tmp_path / "spec.yaml"
        path.write_text("{}", encoding="utf-8")
        with pytest.raises(ConfigurationError, match=".json or .toml"):
            ExperimentSpec.from_file(path)

    def test_invalid_json_names_the_file(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(ConfigurationError, match="broken.json"):
            ExperimentSpec.from_file(path)


class TestOverrides:
    def test_nested_override_replaces_one_field(self):
        spec = sample_spec()
        out = spec.with_overrides({"workload.load_fraction": 0.8})
        assert out.workload.load_fraction == 0.8
        assert out.workload.num_requests == spec.workload.num_requests
        assert spec.workload.load_fraction == 0.5  # original untouched

    def test_runner_flip_is_one_override(self):
        assert sample_spec().with_overrides({"runner": "request"}).runner == "request"

    def test_unknown_override_path_raises(self):
        with pytest.raises(ConfigurationError, match="workload.load_fractoin"):
            sample_spec().with_overrides({"workload.load_fractoin": 0.8})

    def test_derived_specs_do_not_share_params(self):
        spec = ExperimentSpec(
            name="scen",
            runner="scenario",
            scenario="single_vip_testbed",
            params={"load_fraction": 0.7},
        )
        derived = spec.with_overrides({"seed": 1})
        assert derived.params == spec.params
        assert derived.params is not spec.params

    def test_controller_with_unweighted_policy_is_rejected(self):
        with pytest.raises(ConfigurationError, match="weighted"):
            sample_spec(
                policy=PolicySpec(name="lc"),
                controller=ControllerSpec(enabled=True),
            )

    def test_scenario_bare_key_lands_in_params(self):
        spec = ExperimentSpec(
            name="scen",
            runner="scenario",
            scenario="single_vip_testbed",
            params={"load_fraction": 0.7, "seed": 7},
        )
        out = spec.with_overrides({"load_fraction": 0.5})
        assert out.params["load_fraction"] == 0.5
        assert out.params["seed"] == 7


def _as_toml(data: dict, prefix: str = "") -> str:
    """Minimal TOML encoder for the spec tree (tests only)."""
    lines: list[str] = []
    tables: list[tuple[str, dict]] = []
    for key, value in data.items():
        if isinstance(value, dict):
            tables.append((f"{prefix}{key}", value))
        elif value is None:
            continue  # TOML has no null; loaders fall back to the default
        else:
            lines.append(f"{key} = {json.dumps(value)}")
    text = "\n".join(lines) + "\n"
    for name, table in tables:
        text += f"\n[{name}]\n" + _as_toml(table, prefix=f"{name}.")
    return text

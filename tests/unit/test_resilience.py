"""First-class failure semantics: probes, retries, chaos, fault tolerance.

Covers the resilience layer end to end:

* spec validation for the health / retry / chaos sections and graceful
  ``drain_s`` events, plus the timeline edge cases (t=0 events, duplicate
  events, failing an already-failed DIP);
* the probe state machine's closed-form ``detection_delay_s`` against the
  request engine's observed detection window — requests keep landing on a
  dead DIP until the unhealthy threshold crosses, then stop;
* the fluid/request crosscheck scenario: both substrates walk the same
  seeded probe grid, so their per-window loss trajectories agree;
* retry/timeout/backoff semantics — retries recover blackholed traffic,
  tiny timeouts mark ``timed_out``, exhausted budgets mark ``gave_up`` —
  and bit-identical repeats per seed;
* seeded chaos schedules: deterministic expansion, idempotent arming,
  manual-event exclusion, and bit-identical execution per seed;
* per-point sweep error capture (inline and pooled) with
  ``failed_runs`` provenance;
* the fault-tolerant worker pool: crashed and hung workers are recycled
  and their tasks re-dispatched (mid-sweep and mid-sharded-run), results
  converge to the no-crash baseline, and the accounting lands in
  provenance.
"""

from __future__ import annotations

import os
from functools import partial

import pytest

from repro.api.result import RunResult
from repro.api.runners import execute, expand_spec_chaos
from repro.api.spec import (
    ChaosSpec,
    ControllerSpec,
    EventSpec,
    ExperimentSpec,
    HealthCheckSpec,
    PolicySpec,
    PoolSpec,
    RetryPolicy,
    TimelineSpec,
    WorkloadSpec,
    expand_chaos_events,
)
from repro.api.registry import get_spec
from repro.api.sweep import Sweep, SweepAxis
from repro.exceptions import ConfigurationError
from repro.parallel import WorkerPool, plan_shards, run_request_sharded
from repro.parallel.pool import _spec_for_error_row


def request_spec(
    *,
    name: str = "resilience-test",
    num_dips: int = 4,
    num_requests: int = 20_000,
    policy: str = "rr",
    seed: int = 7,
    **spec_kwargs,
) -> ExperimentSpec:
    return ExperimentSpec(
        name=name,
        runner="request",
        pool=PoolSpec(kind="uniform", num_dips=num_dips),
        workload=WorkloadSpec(
            load_fraction=0.6, num_requests=num_requests, warmup_s=1.0
        ),
        policy=PolicySpec(name=policy),
        controller=ControllerSpec(enabled=False),
        seed=seed,
        **spec_kwargs,
    )


def outage_timeline(
    fail_at: float = 4.0,
    recover_at: float | None = None,
    horizon: float = 12.0,
    *,
    drain_s: float = 0.0,
) -> TimelineSpec:
    events = [
        EventSpec(time_s=fail_at, kind="dip_fail", dip="DIP-1", drain_s=drain_s)
    ]
    if recover_at is not None:
        events.append(EventSpec(time_s=recover_at, kind="dip_recover", dip="DIP-1"))
    return TimelineSpec(events=tuple(events), window_s=1.0, horizon_s=horizon)


def window_at(result: RunResult, start_s: float):
    for window in result.windows:
        if window.start_s == pytest.approx(start_s):
            return window
    raise AssertionError(f"no window starting at {start_s}: {result.windows}")


# -- spec validation --------------------------------------------------------------


class TestSpecValidation:
    @pytest.mark.parametrize(
        "kwargs, message",
        [
            (dict(probe_interval_s=0.0), "probe_interval_s must be positive"),
            (dict(probe_timeout_s=0.0), "probe_timeout_s must be in"),
            (
                dict(probe_interval_s=1.0, probe_timeout_s=1.5),
                "probe_timeout_s must be in",
            ),
            (dict(unhealthy_threshold=0), "unhealthy_threshold must be >= 1"),
            (dict(healthy_threshold=0), "healthy_threshold must be >= 1"),
        ],
    )
    def test_health_field_rules(self, kwargs, message):
        with pytest.raises(ConfigurationError, match=message):
            HealthCheckSpec(enabled=True, **kwargs)

    @pytest.mark.parametrize(
        "kwargs, message",
        [
            (dict(request_timeout_s=0.0), "request_timeout_s must be positive"),
            (dict(max_retries=-1), "max_retries must be >= 0"),
            (dict(backoff_base_s=-0.1), "backoff_base_s must be >= 0"),
            (dict(backoff_multiplier=0.5), "backoff_multiplier must be >= 1"),
            (dict(jitter_fraction=1.5), "jitter_fraction must be in"),
            (dict(retry_budget=-1.0), "retry_budget must be >= 0"),
        ],
    )
    def test_retry_field_rules(self, kwargs, message):
        with pytest.raises(ConfigurationError, match=message):
            RetryPolicy(enabled=True, **kwargs)

    @pytest.mark.parametrize(
        "kwargs, message",
        [
            (dict(failure_rate_per_min=0.0), "failure_rate_per_min"),
            (dict(mean_outage_s=0.0), "mean_outage_s"),
            (dict(flap_probability=1.0), "flap_probability"),
            (dict(rack_size=-1), "rack_size"),
            (dict(max_concurrent_failures=0), "max_concurrent_failures"),
        ],
    )
    def test_chaos_field_rules(self, kwargs, message):
        with pytest.raises(ConfigurationError, match=message):
            ChaosSpec(seed=1, **kwargs)

    def test_retry_needs_the_request_runner(self):
        with pytest.raises(ConfigurationError, match="runner 'request'"):
            ExperimentSpec(
                name="bad", runner="fluid", retry=RetryPolicy(enabled=True)
            )

    def test_chaos_needs_an_explicit_horizon(self):
        with pytest.raises(ConfigurationError, match="horizon_s"):
            request_spec(timeline=TimelineSpec(chaos=ChaosSpec(seed=3)))

    def test_scenario_runner_rejects_health_and_retry(self):
        with pytest.raises(ConfigurationError, match="health/retry"):
            ExperimentSpec(
                name="bad",
                runner="scenario",
                scenario="dip_outage_recovery",
                health=HealthCheckSpec(enabled=True),
            )

    @pytest.mark.parametrize(
        "kwargs, message",
        [
            (dict(time_s=0.0, kind="dip_fail", dip="D"), "must be > 0"),
            (
                dict(time_s=1.0, kind="dip_fail", dip="D", drain_s=-1.0),
                "drain_s must be >= 0",
            ),
            (
                dict(time_s=1.0, kind="dip_recover", dip="D", drain_s=2.0),
                "does not take a drain_s",
            ),
        ],
    )
    def test_event_drain_and_time_rules(self, kwargs, message):
        with pytest.raises(ConfigurationError, match=message):
            EventSpec(**kwargs)

    def test_duplicate_events_rejected(self):
        event = EventSpec(time_s=2.0, kind="dip_fail", dip="DIP-1")
        with pytest.raises(ConfigurationError, match="duplicate"):
            TimelineSpec(events=(event, event), horizon_s=10.0)

    def test_failing_an_already_failed_dip_rejected(self):
        with pytest.raises(ConfigurationError, match="already failed"):
            TimelineSpec(
                events=(
                    EventSpec(time_s=2.0, kind="dip_fail", dip="DIP-1"),
                    EventSpec(time_s=4.0, kind="dip_fail", dip="DIP-1"),
                ),
                horizon_s=10.0,
            )

    def test_recovering_a_never_failed_dip_rejected(self):
        with pytest.raises(ConfigurationError, match="no earlier event"):
            TimelineSpec(
                events=(EventSpec(time_s=2.0, kind="dip_recover", dip="DIP-1"),),
                horizon_s=10.0,
            )

    def test_horizon_must_cover_the_drain(self):
        with pytest.raises(ConfigurationError, match="drain ending"):
            TimelineSpec(
                events=(
                    EventSpec(
                        time_s=8.0, kind="dip_fail", dip="DIP-1", drain_s=4.0
                    ),
                ),
                horizon_s=10.0,
            )


# -- probe math -------------------------------------------------------------------


class TestProbeMath:
    def test_probe_phase_is_seeded_and_in_range(self):
        health = HealthCheckSpec(enabled=True, probe_interval_s=1.5)
        phases = [health.probe_phase_s(7, index) for index in range(8)]
        assert all(0.0 <= phase < 1.5 for phase in phases)
        assert phases == [health.probe_phase_s(7, index) for index in range(8)]
        assert len(set(phases)) > 1  # DIPs are not probed in lock-step
        assert health.probe_phase_s(8, 0) != phases[0]

    @pytest.mark.parametrize("seed", [0, 7, 17, 123])
    @pytest.mark.parametrize("fail_time", [0.05, 4.0, 6.283])
    def test_detection_delay_bounds(self, seed, fail_time):
        health = HealthCheckSpec(
            enabled=True,
            probe_interval_s=1.0,
            probe_timeout_s=0.2,
            unhealthy_threshold=3,
        )
        delay = health.detection_delay_s(seed, 0, fail_time)
        # First failing probe lands within one interval of the failure;
        # the threshold crossing adds (U-1) intervals plus the timeout.
        assert 2 * 1.0 + 0.2 <= delay <= 3 * 1.0 + 0.2

    def test_detection_delay_matches_manual_grid_walk(self):
        health = HealthCheckSpec(
            enabled=True,
            probe_interval_s=0.7,
            probe_timeout_s=0.1,
            unhealthy_threshold=2,
        )
        fail_time = 5.3
        for index in range(4):
            t = health.probe_phase_s(11, index)
            fails = 0
            while True:
                if t >= fail_time:
                    fails += 1
                    if fails == health.unhealthy_threshold:
                        break
                t += health.probe_interval_s
            expected = t + health.probe_timeout_s - fail_time
            assert health.detection_delay_s(11, index, fail_time) == pytest.approx(
                expected
            )


# -- detection on the request engine ----------------------------------------------


class TestDetectionDelay:
    def test_requests_blackhole_until_the_threshold_crosses(self):
        spec = request_spec(
            health=HealthCheckSpec(enabled=True),
            timeline=outage_timeline(fail_at=4.0, horizon=12.0),
        )
        delay = spec.health.detection_delay_s(spec.seed, 0, 4.0)
        result = execute(spec)

        # Before the failure: nothing lost.
        assert window_at(result, 2.0).metrics["drop_fraction"] < 0.02
        # Inside the detection window the LB still routes ~1/4 of the
        # traffic into the dead DIP and loses all of it.
        assert window_at(result, 5.0).metrics["drop_fraction"] > 0.15
        # Once the unhealthy threshold crosses, the bleeding stops.
        first_clean = int(4.0 + delay) + 1
        for start in range(first_clean + 1, 12):
            assert window_at(result, float(start)).metrics["drop_fraction"] < 0.02

        # Total loss matches the closed form: victim share x detection
        # window, spread over the timed phase.
        predicted = (1.0 / 4) * delay / 12.0
        assert result.metrics["drop_fraction"] == pytest.approx(
            predicted, rel=0.35
        )

    def test_oracle_mode_detects_immediately(self):
        health_on = execute(
            request_spec(
                health=HealthCheckSpec(enabled=True),
                timeline=outage_timeline(fail_at=4.0, horizon=12.0),
            )
        )
        oracle = execute(
            request_spec(timeline=outage_timeline(fail_at=4.0, horizon=12.0))
        )
        # The oracle only loses what was queued at the instant of death;
        # probe-based detection pays the whole detection window.
        assert oracle.metrics["drop_fraction"] < 0.2 * health_on.metrics[
            "drop_fraction"
        ]

    def test_fluid_and_request_detection_windows_agree(self):
        result = execute(get_spec("failure_crosscheck"))
        assert result.metrics["max_window_drop_delta"] < 0.01
        assert result.metrics["fluid_lost_fraction"] == pytest.approx(
            result.metrics["request_lost_fraction"], rel=0.05
        )
        assert result.metrics["predicted_peak_drop_fraction"] == pytest.approx(
            result.metrics["fluid_lost_fraction"], rel=0.05
        )


# -- retry / timeout / backoff ----------------------------------------------------


class TestRetryPolicy:
    def outage_spec(self, **retry_kwargs) -> ExperimentSpec:
        return request_spec(
            health=HealthCheckSpec(enabled=True),
            retry=RetryPolicy(enabled=True, **retry_kwargs),
            timeline=outage_timeline(fail_at=3.0, recover_at=8.0, horizon=12.0),
        )

    def test_retries_recover_blackholed_traffic(self):
        with_retry = execute(self.outage_spec(request_timeout_s=0.5))
        without = execute(
            request_spec(
                health=HealthCheckSpec(enabled=True),
                timeline=outage_timeline(
                    fail_at=3.0, recover_at=8.0, horizon=12.0
                ),
            )
        )
        assert without.metrics["drop_fraction"] > 0.03
        assert with_retry.metrics["drop_fraction"] < 0.01
        # The recovered traffic shows up as retried requests instead.
        assert with_retry.metrics["retried_fraction"] > 0.02
        assert with_retry.metrics["attempts_mean"] > 1.0

    def test_exhausted_retries_mark_gave_up(self):
        result = execute(
            self.outage_spec(max_retries=0, request_timeout_s=0.5)
        )
        assert result.metrics["gave_up_fraction"] > 0.02
        assert result.metrics["attempts_mean"] == pytest.approx(1.0)

    def test_tiny_timeouts_mark_timed_out(self):
        result = execute(
            request_spec(
                retry=RetryPolicy(
                    enabled=True, request_timeout_s=0.003, retry_budget=0.5
                ),
                timeline=TimelineSpec(window_s=2.0, horizon_s=6.0),
            )
        )
        assert result.metrics["timed_out_fraction"] > 0.05
        assert result.metrics["attempts_mean"] > 1.0

    def test_retry_runs_are_bit_identical_per_seed(self):
        spec = self.outage_spec()
        first, second = execute(spec), execute(spec)
        assert first.metrics == second.metrics
        assert [w.to_dict() for w in first.windows] == [
            w.to_dict() for w in second.windows
        ]


# -- graceful draining ------------------------------------------------------------


class TestDraining:
    def test_drained_dip_fail_loses_nothing(self):
        # Under probe-based health an abrupt death blackholes the victim's
        # share until detection; a drain is operator-initiated, so the LB
        # stops routing at the event instant and nothing is ever lost.
        abrupt = execute(
            request_spec(
                health=HealthCheckSpec(enabled=True),
                timeline=outage_timeline(fail_at=4.0, horizon=8.0),
            )
        )
        drained = execute(
            request_spec(
                health=HealthCheckSpec(enabled=True),
                timeline=outage_timeline(fail_at=4.0, horizon=8.0, drain_s=2.0),
            )
        )
        assert abrupt.metrics["drop_fraction"] > 0.03
        assert drained.metrics["drop_fraction"] == 0.0

    def test_drained_vip_offboard_runs_on_the_fleet(self):
        from repro.api.spec import FleetSpec

        spec = ExperimentSpec(
            name="fleet-drain",
            runner="fleet",
            pool=PoolSpec(kind="mixed_core", num_dips=12),
            workload=WorkloadSpec(load_fraction=0.5),
            fleet=FleetSpec(num_vips=4),
            timeline=TimelineSpec(
                events=(
                    EventSpec(
                        time_s=10.0, kind="vip_offboard", vip="VIP-1", drain_s=5.0
                    ),
                ),
                window_s=10.0,
                horizon_s=40.0,
            ),
            seed=23,
        )
        result = execute(spec)
        assert len(result.windows) == 4
        assert any("vip_offboard" in e for w in result.windows for e in w.events)

    def test_drain_forces_the_serial_fallback(self):
        plan = plan_shards(
            request_spec(
                timeline=outage_timeline(fail_at=4.0, horizon=8.0, drain_s=2.0)
            ),
            shards=4,
        )
        assert plan.mode == "serial"
        assert "drain" in plan.fallback_reason

    def test_health_and_retry_force_the_serial_fallback(self):
        for kwargs in (
            dict(health=HealthCheckSpec(enabled=True)),
            dict(retry=RetryPolicy(enabled=True)),
        ):
            plan = plan_shards(
                request_spec(
                    timeline=TimelineSpec(window_s=1.0, horizon_s=8.0), **kwargs
                ),
                shards=4,
            )
            assert plan.mode == "serial"
            assert plan.fallback_reason is not None


# -- chaos schedules --------------------------------------------------------------


class TestChaos:
    DIPS = tuple(f"DIP-{i}" for i in range(1, 9))

    def test_expansion_is_deterministic_per_seed(self):
        chaos = ChaosSpec(seed=42)
        first = expand_chaos_events(chaos, dip_ids=self.DIPS, horizon_s=120.0)
        second = expand_chaos_events(chaos, dip_ids=self.DIPS, horizon_s=120.0)
        assert first == second and len(first) > 0
        other = expand_chaos_events(
            ChaosSpec(seed=43), dip_ids=self.DIPS, horizon_s=120.0
        )
        assert first != other

    def test_expansion_yields_a_valid_timeline(self):
        events = expand_chaos_events(
            ChaosSpec(seed=42, flap_probability=0.5),
            dip_ids=self.DIPS,
            horizon_s=120.0,
        )
        assert all(0 < e.time_s < 120.0 for e in events)
        # The fail/recover alternation satisfies the timeline validator.
        TimelineSpec(events=events, horizon_s=120.0)

    def test_manually_failed_dips_are_exempt(self):
        manual = (EventSpec(time_s=5.0, kind="dip_fail", dip="DIP-1"),)
        events = expand_chaos_events(
            ChaosSpec(seed=42, failure_rate_per_min=20.0),
            dip_ids=self.DIPS,
            horizon_s=120.0,
            manual_events=manual,
        )
        assert events and all(e.dip != "DIP-1" for e in events)

    def test_expand_spec_chaos_merges_and_disarms(self):
        spec = request_spec(
            timeline=TimelineSpec(
                events=(EventSpec(time_s=5.0, kind="dip_fail", dip="DIP-1"),),
                window_s=5.0,
                horizon_s=60.0,
                chaos=ChaosSpec(seed=9, failure_rate_per_min=4.0),
            ),
            num_dips=8,
        )
        expanded = expand_spec_chaos(spec)
        assert not expanded.timeline.chaos.enabled
        assert len(expanded.timeline.events) > 1
        assert expanded.timeline.events[0].dip == "DIP-1"
        # Idempotent: a second expansion is a no-op.
        assert expand_spec_chaos(expanded) is expanded

    def test_chaos_runs_are_bit_identical_per_seed(self):
        spec = request_spec(
            num_dips=8,
            timeline=TimelineSpec(
                window_s=2.0,
                horizon_s=10.0,
                chaos=ChaosSpec(
                    seed=5, failure_rate_per_min=30.0, mean_outage_s=3.0
                ),
            ),
        )
        first, second = execute(spec), execute(spec)
        assert first.metrics == second.metrics
        assert [w.to_dict() for w in first.windows] == [
            w.to_dict() for w in second.windows
        ]
        assert first.metrics["timeline_events"] > 0


# -- sweep error capture ----------------------------------------------------------


def sweep_base() -> ExperimentSpec:
    return ExperimentSpec(
        name="error-capture",
        runner="fluid",
        pool=PoolSpec(kind="uniform", num_dips=4),
        workload=WorkloadSpec(load_fraction=0.5),
        controller=ControllerSpec(enabled=False),
    )


class TestSweepErrorCapture:
    @pytest.mark.parametrize("max_workers", [1, 2])
    def test_one_bad_point_does_not_abort_the_sweep(self, max_workers):
        sweep = Sweep(
            base=sweep_base(),
            axes=(
                SweepAxis(path="workload.load_fraction", values=(0.4, 2.5, 0.6)),
            ),
        )
        results = sweep.run(max_workers=max_workers)
        assert len(results) == 3
        good = [r for r in results if r.error is None]
        bad = [r for r in results if r.error is not None]
        assert len(good) == 2 and len(bad) == 1
        assert "load_fraction" in bad[0].error
        assert bad[0].metrics == {} and bad[0].spec.name.endswith("=2.5")
        for result in results:
            assert result.provenance.failed_runs == 1
        assert all(r.metrics["mean_latency_ms"] > 0 for r in good)

    def test_error_rows_round_trip_through_json(self):
        row = RunResult.error_result(sweep_base(), "ValueError: boom")
        from dataclasses import replace

        row = replace(
            row,
            provenance=replace(
                row.provenance, retries=2, degraded_to="inline", failed_runs=1
            ),
        )
        loaded = RunResult.from_dict(row.to_dict())
        assert loaded.error == "ValueError: boom"
        assert loaded.provenance.retries == 2
        assert loaded.provenance.degraded_to == "inline"
        assert loaded.provenance.failed_runs == 1

    def test_spec_for_error_row_survives_invalid_overrides(self):
        base = sweep_base()
        spec = _spec_for_error_row(
            base, {"name": "error-capture/x=1", "no.such.path": 1}
        )
        assert spec.name == "error-capture/x=1"
        assert spec.pool == base.pool


# -- the fault-tolerant pool ------------------------------------------------------


def _square(value: int) -> int:
    return value * value


def _crash_until_flag(flag_path: str, value: int) -> int:
    """Die hard (kill the whole worker) until ``flag_path`` exists."""
    if not os.path.exists(flag_path):
        with open(flag_path, "w", encoding="utf-8"):
            pass
        os._exit(1)
    return _square(value)


def _hang_until_flag(flag_path: str, value: int) -> int:
    """Hang past any reasonable deadline until ``flag_path`` exists."""
    import time

    if not os.path.exists(flag_path):
        with open(flag_path, "w", encoding="utf-8"):
            pass
        time.sleep(60.0)
    return _square(value)


def _crash_in_workers(parent_pid: int, value: int) -> int:
    if os.getpid() != parent_pid:
        os._exit(1)
    return _square(value)


def _raise_value_error(value: int) -> int:
    raise ValueError(f"bad payload {value}")


def _call_with_flag(flag_path: str, func, payload):
    """Picklable wrapper: crash the worker once, then delegate to ``func``."""
    if not os.path.exists(flag_path):
        with open(flag_path, "w", encoding="utf-8"):
            pass
        os._exit(1)
    return func(payload)


class CrashOncePool(WorkerPool):
    """A WorkerPool whose first-ever task kills its worker process."""

    def __init__(self, flag_path, **kwargs) -> None:
        super().__init__(**kwargs)
        self._flag_path = str(flag_path)

    def map(self, func, payloads, **kwargs):
        return super().map(
            partial(_call_with_flag, self._flag_path, func), payloads, **kwargs
        )


class TestFaultTolerantPool:
    def test_crashed_worker_is_recycled_and_tasks_retried(self, tmp_path):
        flag = str(tmp_path / "crashed")
        with WorkerPool(max_workers=2, retry_backoff_s=0.0) as pool:
            results = pool.map(partial(_crash_until_flag, flag), list(range(6)))
        assert results == [v * v for v in range(6)]
        assert pool.last_map_stats["crashes"] >= 1
        assert pool.last_map_stats["retries"] >= 1
        assert pool.last_map_stats["degraded_to"] is None

    def test_hung_worker_times_out_and_tasks_retry(self, tmp_path):
        flag = str(tmp_path / "hung")
        with WorkerPool(
            max_workers=2, task_timeout_s=1.0, retry_backoff_s=0.0
        ) as pool:
            results = pool.map(partial(_hang_until_flag, flag), list(range(4)))
        assert results == [v * v for v in range(4)]
        assert pool.last_map_stats["timeouts"] >= 1
        assert pool.last_map_stats["retries"] >= 1

    def test_always_crashing_task_degrades_to_inline(self):
        with WorkerPool(
            max_workers=2, max_task_retries=1, retry_backoff_s=0.0
        ) as pool:
            results = pool.map(
                partial(_crash_in_workers, os.getpid()), list(range(3))
            )
        assert results == [v * v for v in range(3)]
        assert pool.last_map_stats["degraded_to"] == "inline"
        assert pool.last_map_stats["crashes"] >= 1

    def test_genuine_task_exceptions_propagate(self):
        with WorkerPool(max_workers=2, retry_backoff_s=0.0) as pool:
            with pytest.raises(ValueError, match="bad payload"):
                pool.map(_raise_value_error, list(range(4)))

    def test_crash_mid_sweep_converges_to_the_baseline(self, tmp_path):
        base = sweep_base()
        overrides = [
            {"workload.load_fraction": value, "name": f"sweep/load={value}"}
            for value in (0.4, 0.5, 0.6)
        ]
        with WorkerPool(max_workers=2) as pool:
            baseline = pool.run_specs(base, overrides)
        with CrashOncePool(
            str(tmp_path / "sweep-crash"), max_workers=2, retry_backoff_s=0.0
        ) as pool:
            crashed = pool.run_specs(base, overrides)
        assert [r.error for r in crashed] == [None, None, None]
        assert [r.metrics for r in crashed] == [r.metrics for r in baseline]
        assert all(r.provenance.retries >= 1 for r in crashed)
        assert all(r.provenance.failed_runs == 0 for r in crashed)

    def test_crash_mid_sharded_run_converges_to_the_baseline(self, tmp_path):
        spec = request_spec(num_dips=8, num_requests=40_000)
        plan = plan_shards(spec, shards=2)
        assert plan.mode == "exact"
        with WorkerPool(max_workers=2) as pool:
            baseline = run_request_sharded(spec, plan, pool=pool)
        with CrashOncePool(
            str(tmp_path / "shard-crash"), max_workers=2, retry_backoff_s=0.0
        ) as pool:
            crashed = run_request_sharded(spec, plan, pool=pool)
            stats = pool.last_map_stats
        assert stats["crashes"] >= 1 and stats["retries"] >= 1
        assert crashed.metrics == baseline.metrics

"""Unit tests for the MILP solver substrate (repro.solver)."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.solver import (
    AssignmentProblem,
    DipCandidates,
    SolveStatus,
    available_backends,
    build_problem,
    solve,
    solve_branch_and_bound,
    solve_dp,
    solve_greedy,
    solve_scipy,
    uniform_candidates,
)

EXACT_BACKENDS = [b for b in ("scipy", "branch_and_bound") if b in available_backends()]
ALL_BACKENDS = [b for b in available_backends() if b != "dp"]


def two_dip_problem(theta=None, tolerance=0.01) -> AssignmentProblem:
    """DIP a is fast (cheap to load), DIP b slow (expensive to load)."""
    return AssignmentProblem(
        dips=(
            DipCandidates(
                dip="a",
                weights=(0.2, 0.4, 0.6, 0.8),
                latencies_ms=(1.0, 2.0, 4.0, 8.0),
                w_max=0.8,
            ),
            DipCandidates(
                dip="b",
                weights=(0.2, 0.4, 0.6, 0.8),
                latencies_ms=(2.0, 6.0, 14.0, 30.0),
                w_max=0.6,
            ),
        ),
        total_weight=1.0,
        total_weight_tolerance=tolerance,
        theta=theta,
    )


class TestDipCandidates:
    def test_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            DipCandidates(dip="a", weights=(0.1, 0.2), latencies_ms=(1.0,))

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            DipCandidates(dip="a", weights=(), latencies_ms=())

    def test_weight_out_of_range(self):
        with pytest.raises(ConfigurationError):
            DipCandidates(dip="a", weights=(1.5,), latencies_ms=(1.0,))

    def test_negative_latency(self):
        with pytest.raises(ConfigurationError):
            DipCandidates(dip="a", weights=(0.5,), latencies_ms=(-1.0,))

    def test_sorted_by_weight(self):
        cand = DipCandidates(dip="a", weights=(0.4, 0.1), latencies_ms=(5.0, 1.0))
        ordered = cand.sorted_by_weight()
        assert ordered.weights == (0.1, 0.4)
        assert ordered.latencies_ms == (1.0, 5.0)

    def test_min_max(self):
        cand = DipCandidates(dip="a", weights=(0.4, 0.1), latencies_ms=(5.0, 1.0))
        assert cand.min_weight() == pytest.approx(0.1)
        assert cand.max_weight() == pytest.approx(0.4)


class TestAssignmentProblem:
    def test_duplicate_dips_rejected(self):
        cand = DipCandidates(dip="a", weights=(0.5,), latencies_ms=(1.0,))
        with pytest.raises(ConfigurationError):
            AssignmentProblem(dips=(cand, cand))

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            AssignmentProblem(dips=())

    def test_weight_bounds(self):
        problem = two_dip_problem()
        assert problem.weight_bounds() == (pytest.approx(0.4), pytest.approx(1.6))

    def test_is_sum_feasible(self):
        assert two_dip_problem().is_sum_feasible()

    def test_sum_infeasible_when_target_too_high(self):
        problem = AssignmentProblem(
            dips=(DipCandidates(dip="a", weights=(0.1, 0.2), latencies_ms=(1.0, 2.0)),),
            total_weight=1.0,
        )
        assert not problem.is_sum_feasible()

    def test_objective_and_weights_of(self):
        problem = two_dip_problem()
        selection = {"a": 3, "b": 0}
        assert problem.objective_of(selection) == pytest.approx(8.0 + 2.0)
        assert problem.weights_of(selection) == {"a": 0.8, "b": 0.2}

    def test_overloaded_dips(self):
        problem = two_dip_problem()
        assert problem.overloaded_dips({"a": 0.9, "b": 0.5}) == ("a",)
        assert problem.overloaded_dips({"a": 0.8, "b": 0.6}) == ()

    def test_candidates_for(self):
        problem = two_dip_problem()
        assert problem.candidates_for("b").dip == "b"
        with pytest.raises(KeyError):
            problem.candidates_for("missing")

    def test_build_problem_helper(self):
        problem = build_problem(
            {"a": {0.1: 1.0, 0.2: 2.0}, "b": {0.1: 3.0, 0.2: 4.0}},
            w_max={"a": 0.2},
        )
        assert problem.num_dips == 2
        assert problem.candidates_for("a").w_max == pytest.approx(0.2)

    def test_uniform_candidates(self):
        cand = uniform_candidates("a", lambda w: 10 * w, count=5, upper=0.4)
        assert cand.weights == pytest.approx((0.0, 0.1, 0.2, 0.3, 0.4))
        assert cand.latencies_ms[-1] == pytest.approx(4.0)

    def test_uniform_candidates_degenerate_range(self):
        cand = uniform_candidates("a", lambda w: 1.0, count=3, upper=0.0)
        assert cand.weights == (0.0, 0.0, 0.0)


@pytest.mark.parametrize("backend", EXACT_BACKENDS)
class TestExactBackends:
    def test_finds_optimal_solution(self, backend):
        result = solve(two_dip_problem(), backend=backend)
        assert result.status.has_solution
        # Optimal: a=0.8, b=0.2 → 8+2=10 vs a=0.6,b=0.4 → 4+6=10 … both 10;
        # a=0.4,b=0.6 → 2+14=16.  The optimum objective is 10.
        assert result.objective_ms == pytest.approx(10.0)
        assert result.total_weight == pytest.approx(1.0, abs=0.011)

    def test_respects_theta(self, backend):
        free = solve(two_dip_problem(theta=None), backend=backend)
        constrained = solve(two_dip_problem(theta=0.2), backend=backend)
        assert constrained.status.has_solution
        # With theta=0.2 the chosen weights may differ by at most 0.2.
        weights = list(constrained.weights.values())
        assert max(weights) - min(weights) <= 0.2 + 1e-9
        assert constrained.objective_ms >= free.objective_ms - 1e-9

    def test_theta_zero_infeasible_on_this_grid(self, backend):
        # theta=0 forces equal weights, but 2 × {0.2,0.4,0.6,0.8} never sums
        # to 1.0 within the 0.01 tolerance.
        result = solve(two_dip_problem(theta=0.0), backend=backend)
        assert result.status is SolveStatus.INFEASIBLE

    def test_infeasible_when_sum_unreachable(self, backend):
        problem = AssignmentProblem(
            dips=(
                DipCandidates(dip="a", weights=(0.1,), latencies_ms=(1.0,)),
                DipCandidates(dip="b", weights=(0.1,), latencies_ms=(1.0,)),
            ),
            total_weight=1.0,
            total_weight_tolerance=0.01,
        )
        result = solve(problem, backend=backend)
        assert result.status is SolveStatus.INFEASIBLE

    def test_single_dip(self, backend):
        problem = AssignmentProblem(
            dips=(
                DipCandidates(
                    dip="only", weights=(0.5, 1.0), latencies_ms=(1.0, 3.0)
                ),
            ),
            total_weight=1.0,
            total_weight_tolerance=0.01,
        )
        result = solve(problem, backend=backend)
        assert result.weights == {"only": 1.0}

    def test_overload_detection(self, backend):
        # Force total weight 1 with w_max 0.3 per DIP: any solution overloads.
        problem = AssignmentProblem(
            dips=(
                DipCandidates(dip="a", weights=(0.4, 0.6), latencies_ms=(1.0, 2.0), w_max=0.3),
                DipCandidates(dip="b", weights=(0.4, 0.6), latencies_ms=(1.0, 2.0), w_max=0.3),
            ),
            total_weight=1.0,
            total_weight_tolerance=0.05,
        )
        result = solve(problem, backend=backend)
        assert result.status.has_solution
        assert result.is_overloaded

    def test_selection_indices_consistent(self, backend):
        problem = two_dip_problem()
        result = solve(problem, backend=backend)
        assert problem.objective_of(result.selection) == pytest.approx(result.objective_ms)
        assert problem.weights_of(result.selection) == result.weights


@pytest.mark.parametrize("backend", ALL_BACKENDS)
class TestAllBackendsFeasibility:
    def test_solution_within_tolerance_band(self, backend):
        problem = two_dip_problem(tolerance=0.05)
        result = solve(problem, backend=backend)
        assert result.status.has_solution
        assert abs(result.total_weight - 1.0) <= 0.05 + 1e-9

    def test_larger_pool(self, backend):
        dips = tuple(
            DipCandidates(
                dip=f"d{i}",
                weights=(0.0, 0.05, 0.10, 0.15, 0.20),
                latencies_ms=(1.0, 1.5, 2.5, 5.0, 9.0),
                w_max=0.2,
            )
            for i in range(10)
        )
        problem = AssignmentProblem(dips=dips, total_weight=1.0, total_weight_tolerance=0.02)
        result = solve(problem, backend=backend)
        assert result.status.has_solution
        assert abs(result.total_weight - 1.0) <= 0.02 + 1e-9


class TestGreedy:
    def test_close_to_optimal_on_convex_costs(self):
        problem = two_dip_problem(tolerance=0.05)
        exact = solve_branch_and_bound(problem)
        heuristic = solve_greedy(problem)
        assert heuristic.status.has_solution
        assert heuristic.objective_ms <= exact.objective_ms * 1.5 + 1e-9

    def test_infeasible_target(self):
        problem = AssignmentProblem(
            dips=(DipCandidates(dip="a", weights=(0.1,), latencies_ms=(1.0,)),),
            total_weight=1.0,
            total_weight_tolerance=0.01,
        )
        assert solve_greedy(problem).status is SolveStatus.INFEASIBLE


class TestDp:
    def test_matches_exact_objective(self):
        problem = two_dip_problem(tolerance=0.02)
        exact = solve_branch_and_bound(problem)
        dp = solve_dp(problem, resolution=1e-3)
        assert dp.status.has_solution
        assert dp.objective_ms == pytest.approx(exact.objective_ms, rel=0.05)

    def test_rejects_theta(self):
        with pytest.raises(ConfigurationError):
            solve_dp(two_dip_problem(theta=0.1))

    def test_rejects_bad_resolution(self):
        with pytest.raises(ConfigurationError):
            solve_dp(two_dip_problem(), resolution=0.0)


class TestDispatcher:
    def test_unknown_backend(self):
        with pytest.raises(ConfigurationError):
            solve(two_dip_problem(), backend="nonexistent")

    def test_auto_picks_available_backend(self):
        result = solve(two_dip_problem(), backend="auto")
        assert result.status.has_solution
        assert result.backend in available_backends()

    def test_available_backends_contains_pure_python(self):
        assert "branch_and_bound" in available_backends()
        assert "greedy" in available_backends()

    @pytest.mark.skipif("scipy" not in available_backends(), reason="SciPy MILP unavailable")
    def test_scipy_and_bnb_agree(self):
        problem = two_dip_problem()
        assert solve_scipy(problem).objective_ms == pytest.approx(
            solve_branch_and_bound(problem).objective_ms
        )


class TestSolveResult:
    def test_status_has_solution(self):
        assert SolveStatus.OPTIMAL.has_solution
        assert SolveStatus.FEASIBLE.has_solution
        assert not SolveStatus.INFEASIBLE.has_solution
        assert not SolveStatus.TIMEOUT.has_solution

    def test_branch_and_bound_counts_nodes(self):
        result = solve_branch_and_bound(two_dip_problem())
        assert result.nodes_explored > 0

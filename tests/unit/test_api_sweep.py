"""Sweep expansion, parallel execution and comparison reports."""

from __future__ import annotations

import math

import pytest

from repro.api import (
    ControllerSpec,
    ExperimentSpec,
    PolicySpec,
    PoolSpec,
    Sweep,
    SweepAxis,
    VmSpec,
    WorkloadSpec,
    compare,
    run,
)
from repro.exceptions import ConfigurationError


def base_spec() -> ExperimentSpec:
    return ExperimentSpec(
        name="sweepbase",
        runner="fluid",
        pool=PoolSpec(kind="uniform", num_dips=4, vm=VmSpec(vcpus=2)),
        workload=WorkloadSpec(load_fraction=0.5, num_requests=1_500),
        policy=PolicySpec(name="wrr"),
        controller=ControllerSpec(enabled=False),
        seed=3,
    )


class TestExpansion:
    def test_grid_is_cartesian_product(self):
        sweep = Sweep.from_axes(
            base_spec(),
            {"workload.load_fraction": [0.4, 0.6], "seed": [1, 2, 3]},
        )
        specs = sweep.expand()
        assert len(specs) == 6
        combos = {(s.workload.load_fraction, s.seed) for s in specs}
        assert combos == {(lf, s) for lf in (0.4, 0.6) for s in (1, 2, 3)}

    def test_zip_pairs_elementwise(self):
        sweep = Sweep.from_axes(
            base_spec(),
            {"workload.load_fraction": [0.4, 0.6], "seed": [1, 2]},
            mode="zip",
        )
        specs = sweep.expand()
        assert [(s.workload.load_fraction, s.seed) for s in specs] == [
            (0.4, 1),
            (0.6, 2),
        ]

    def test_expanded_names_identify_the_point(self):
        specs = Sweep.from_axes(base_spec(), {"seed": [1, 2]}).expand()
        assert specs[0].name == "sweepbase/seed=1"
        assert specs[1].name == "sweepbase/seed=2"

    def test_expansion_is_pure(self):
        sweep = Sweep.from_axes(base_spec(), {"seed": [1, 2]})
        assert sweep.expand() == sweep.expand()
        assert sweep.base.seed == 3

    def test_axis_validation(self):
        with pytest.raises(ConfigurationError, match="at least one value"):
            SweepAxis(path="seed", values=())
        with pytest.raises(ConfigurationError, match="more than once"):
            Sweep(
                base=base_spec(),
                axes=(SweepAxis("seed", (1,)), SweepAxis("seed", (2,))),
            )
        with pytest.raises(ConfigurationError, match="same length"):
            Sweep.from_axes(
                base_spec(), {"seed": [1, 2], "name": ["a"]}, mode="zip"
            )
        with pytest.raises(ConfigurationError, match="mode"):
            Sweep.from_axes(base_spec(), {"seed": [1]}, mode="diagonal")


class TestExecution:
    def test_serial_results_follow_expansion_order(self):
        sweep = Sweep.from_axes(
            base_spec(), {"workload.load_fraction": [0.4, 0.6, 0.8]}
        )
        results = sweep.run()
        latencies = [r.metrics["mean_latency_ms"] for r in results]
        assert latencies == sorted(latencies)  # more load, more latency

    def test_process_pool_matches_serial(self):
        sweep = Sweep.from_axes(
            base_spec(), {"workload.load_fraction": [0.4, 0.7]}
        )
        serial = sweep.run()
        parallel = sweep.run(max_workers=2)
        assert [r.spec.name for r in parallel] == [r.spec.name for r in serial]
        for a, b in zip(serial, parallel):
            assert a.metrics == b.metrics

    def test_rerun_from_saved_spec_file_is_deterministic(self, tmp_path):
        path = base_spec().save(tmp_path / "base.json")
        loaded = ExperimentSpec.from_file(path)
        axes = {"workload.load_fraction": [0.4, 0.6]}
        first = Sweep.from_axes(loaded, axes).run()
        second = Sweep.from_axes(ExperimentSpec.from_file(path), axes).run()
        for a, b in zip(first, second):
            assert a.metrics == b.metrics
            assert a.dip_summaries == b.dip_summaries

    def test_bad_worker_count(self):
        sweep = Sweep.from_axes(base_spec(), {"seed": [1]})
        with pytest.raises(ConfigurationError, match="max_workers"):
            sweep.run(max_workers=0)


class TestCompare:
    def test_compare_aligns_metrics_and_deltas(self):
        results = Sweep.from_axes(
            base_spec(), {"workload.load_fraction": [0.4, 0.8]}
        ).run()
        report = compare(results)
        assert report.baseline == results[0].spec.name
        assert report.metrics["mean_latency_ms"][0] < report.metrics["mean_latency_ms"][1]
        deltas = report.delta_percent("mean_latency_ms")
        assert deltas[0] == 0.0
        assert deltas[1] > 0.0

    def test_compare_across_runners_fills_missing_with_nan(self):
        fluid = run(base_spec())
        request = run(base_spec().with_overrides({"runner": "request"}))
        report = compare([fluid, request])
        assert math.isnan(report.metrics["p99_latency_ms"][0])
        assert report.metrics["p99_latency_ms"][1] > 0
        rendered = report.render()
        assert "mean_latency_ms" in rendered
        assert "[fluid]" in rendered and "[request]" in rendered

    def test_compare_requires_results(self):
        with pytest.raises(ConfigurationError, match="at least one"):
            compare([])

    def test_report_round_trips_to_dict(self):
        report = compare(Sweep.from_axes(base_spec(), {"seed": [1, 2]}).run())
        data = report.to_dict()
        assert data["names"] == list(report.names)
        assert set(data["metrics"]) == set(report.metrics)

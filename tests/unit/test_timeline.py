"""The timeline & observer layer: spec validation, application, determinism.

Covers the tentpole guarantees of the timeline redesign:

* `EventSpec` / `TimelineSpec` validate eagerly with per-kind rules and
  round-trip through JSON inside `ExperimentSpec` and `RunResult`;
* the same timeline executes on all three substrates by flipping
  ``spec.runner`` only, with events applied at their declared times in the
  same order everywhere;
* per-substrate determinism: same spec + seed → bit-identical metrics and
  windows on re-run;
* the vectorized fluid path rebuilds `PoolArrays` after a mid-run
  `capacity_ratio` event (the stale-capacity regression);
* the request engine's arrival rescaling preserves the sorted-stream
  invariant, and observers stream events/rounds/windows live.
"""

from __future__ import annotations

import json
import logging
import math

import pytest

from repro import api
from repro.api.spec import EventSpec, TimelineSpec
from repro.api.timeline import (
    BaseObserver,
    ObserverSet,
    WindowedMetricsObserver,
    check_timeline_supported,
)
from repro.exceptions import ConfigurationError


def timeline_spec(runner: str = "fluid", **overrides) -> api.ExperimentSpec:
    """A small uniform-pool spec with a fault + surge + recovery timeline."""
    base = dict(
        name="timeline-test",
        runner=runner,
        pool=api.PoolSpec(kind="uniform", num_dips=6),
        workload=api.WorkloadSpec(load_fraction=0.6, num_requests=8_000),
        timeline=api.TimelineSpec(
            events=(
                api.EventSpec(time_s=10.0, kind="dip_fail", dip="DIP-2"),
                api.EventSpec(time_s=20.0, kind="arrival_scale", value=1.2),
                api.EventSpec(time_s=30.0, kind="dip_recover", dip="DIP-2"),
            ),
            window_s=5.0,
            horizon_s=45.0,
        ),
        seed=11,
    )
    base.update(overrides)
    return api.ExperimentSpec(**base)


class TestEventSpecValidation:
    def test_kinds_are_validated(self):
        with pytest.raises(ConfigurationError, match="kind must be one of"):
            EventSpec(time_s=1.0, kind="explode")

    @pytest.mark.parametrize(
        "kwargs, message",
        [
            (dict(kind="dip_fail"), "needs the dip field"),
            (dict(kind="dip_fail", dip="D", value=2.0), "does not take a value"),
            (dict(kind="capacity_ratio", dip="D"), "value in \\(0, 1\\]"),
            (dict(kind="capacity_ratio", dip="D", value=1.5), "value in \\(0, 1\\]"),
            (dict(kind="arrival_scale", value=-1.0), "positive value"),
            (dict(kind="arrival_scale", dip="D", value=1.1), "does not take a dip"),
            (dict(kind="vip_onboard"), "needs the vip field"),
            (dict(kind="dip_recover", dip="D", vip="V"), "does not take a vip"),
            (dict(kind="antagonist_phase", dip="D", value=1.5), "integer"),
        ],
    )
    def test_per_kind_field_rules(self, kwargs, message):
        with pytest.raises(ConfigurationError, match=message):
            EventSpec(time_s=1.0, **kwargs)

    def test_negative_time_rejected(self):
        with pytest.raises(ConfigurationError, match="time_s"):
            EventSpec(time_s=-1.0, kind="dip_fail", dip="D")

    def test_label_is_compact(self):
        event = EventSpec(time_s=30.0, kind="capacity_ratio", dip="DIP-3", value=0.5)
        assert event.label() == "t=30s capacity_ratio DIP-3 0.5"


class TestTimelineSpec:
    def test_horizon_must_cover_events(self):
        with pytest.raises(ConfigurationError, match="does not cover"):
            TimelineSpec(
                events=(EventSpec(time_s=50.0, kind="dip_fail", dip="D"),),
                horizon_s=40.0,
            )

    def test_derived_horizon_extends_past_last_event(self):
        timeline = TimelineSpec(
            events=(EventSpec(time_s=12.0, kind="dip_fail", dip="D"),),
            window_s=4.0,
        )
        assert timeline.duration_s() == 12.0 + TimelineSpec.TAIL_WINDOWS * 4.0

    def test_ordered_events_stable_on_ties(self):
        events = (
            EventSpec(time_s=5.0, kind="dip_fail", dip="B"),
            EventSpec(time_s=1.0, kind="dip_fail", dip="C"),
            EventSpec(time_s=5.0, kind="dip_fail", dip="A"),
        )
        ordered = TimelineSpec(events=events).ordered_events()
        assert [e.dip for e in ordered] == ["C", "B", "A"]

    def test_mapping_events_coerce_to_eventspec(self):
        timeline = TimelineSpec(
            events=({"time_s": 3.0, "kind": "dip_fail", "dip": "D"},)
        )
        assert isinstance(timeline.events[0], EventSpec)

    def test_empty_means_no_timed_phase(self):
        assert TimelineSpec().empty
        assert not TimelineSpec(horizon_s=10.0).empty

    def test_unknown_event_key_names_indexed_path(self):
        with pytest.raises(ConfigurationError, match=r"timeline\.events\[0\]"):
            api.ExperimentSpec.from_dict(
                {
                    "name": "x",
                    "timeline": {
                        "events": [{"time_s": 1.0, "kind": "dip_fail", "dipz": "D"}]
                    },
                }
            )

    def test_scenario_runner_rejects_timelines(self):
        with pytest.raises(ConfigurationError, match="cannot carry timeline"):
            api.ExperimentSpec(
                name="x",
                runner="scenario",
                scenario="single_vip_testbed",
                timeline=TimelineSpec(horizon_s=10.0),
            )


class TestProvenanceRoundTrip:
    def test_spec_round_trips_timeline_through_json(self):
        spec = timeline_spec()
        restored = api.ExperimentSpec.from_dict(json.loads(spec.to_json()))
        assert restored == spec
        assert restored.timeline.events == spec.timeline.events

    def test_run_result_round_trips_windows_and_timeline(self, tmp_path):
        result = api.execute(timeline_spec())
        path = result.save(tmp_path / "result.json")
        restored = api.RunResult.load(path)
        assert restored.spec.timeline == result.spec.timeline
        assert restored.windows == result.windows
        assert restored.metrics_equal(result)
        # A reloaded artifact re-runs to the same trajectory.
        rerun = api.execute(restored.spec)
        assert rerun.windows == result.windows


class TestCrossSubstrateTimeline:
    @pytest.mark.parametrize("runner", ["fluid", "request", "fleet"])
    def test_events_fire_at_declared_times(self, runner):
        result = api.execute(timeline_spec(runner))
        by_window = {w.start_s: w.events for w in result.windows if w.events}
        assert set(by_window) == {10.0, 20.0, 30.0}
        assert by_window[10.0] == ("t=10s dip_fail DIP-2",)
        assert by_window[20.0] == ("t=20s arrival_scale 1.2",)
        assert by_window[30.0] == ("t=30s dip_recover DIP-2",)

    @pytest.mark.parametrize("runner", ["fluid", "request", "fleet"])
    def test_rerun_is_bit_identical(self, runner):
        first = api.execute(timeline_spec(runner))
        second = api.execute(timeline_spec(runner))
        assert first.metrics == second.metrics
        assert first.windows == second.windows

    def test_application_order_identical_across_substrates(self):
        orders = []
        for runner in ("fluid", "request", "fleet"):
            result = api.execute(timeline_spec(runner))
            orders.append(
                [label for w in result.windows for label in w.events]
            )
        assert orders[0] == orders[1] == orders[2]

    def test_fault_and_recovery_visible_in_trajectory(self):
        result = api.execute(timeline_spec("request"))
        share = [w.dip_share.get("DIP-2", 0.0) for w in result.windows]
        # DIP-2 serves traffic before the fault, none during the outage
        # windows, and serves again after recovery.
        assert share[1] > 0.0
        assert share[4] == 0.0 and share[5] == 0.0
        assert share[-1] > 0.0

    def test_fluid_controller_reacts_to_outage(self):
        result = api.execute(timeline_spec("fluid"))
        events = sum(w.metrics["controller_events"] for w in result.windows)
        assert events >= 1.0
        fault_window = next(w for w in result.windows if w.start_s == 10.0)
        assert "DIP-2" not in {d for d, s in fault_window.dip_share.items() if s > 0}

    def test_recovered_dip_gets_traffic_back_under_controller(self):
        """dip_recover restores the retired curve and reprograms (§4.5)."""
        result = api.execute(timeline_spec("fluid"))
        outage_window = next(w for w in result.windows if w.start_s == 25.0)
        recovered_window = result.windows[-1]
        assert outage_window.dip_share.get("DIP-2", 0.0) == 0.0
        assert recovered_window.dip_share.get("DIP-2", 0.0) > 0.0

    def test_same_window_grid_on_every_substrate(self):
        counts = {
            runner: len(api.execute(timeline_spec(runner)).windows)
            for runner in ("fluid", "request", "fleet")
        }
        assert len(set(counts.values())) == 1, counts

    def test_timeline_metrics_report_run_average_and_final(self):
        result = api.execute(timeline_spec("fluid"))
        series = [v for v in result.window_series("mean_latency_ms") if v == v]
        assert min(series) <= result.metrics["mean_latency_ms"] <= max(series)
        assert result.metrics["final_latency_ms"] == series[-1]


class TestStaleCapacityRegression:
    """`PoolArrays` must be rebuilt after mid-run capacity changes."""

    def test_fluid_state_reflects_squeezed_capacity(self):
        spec = timeline_spec(
            timeline=api.TimelineSpec(
                events=(
                    api.EventSpec(
                        time_s=5.0, kind="capacity_ratio", dip="DIP-1", value=0.5
                    ),
                ),
                window_s=5.0,
                horizon_s=15.0,
            ),
            controller=api.ControllerSpec(enabled=False),
        )
        cluster = api.build_cluster(spec)
        per_dip_rate = cluster.total_rate_rps / len(cluster.dips)
        before = cluster.state().utilization["DIP-1"]
        assert before == pytest.approx(
            per_dip_rate / cluster.dips["DIP-1"].capacity_rps
        )
        result = api.execute(spec)
        squeezed = result.windows[-1]
        # Same rate over half the capacity: utilization doubles.  A stale
        # PoolArrays would keep reporting the pre-squeeze value.
        base_capacity = cluster.dips["DIP-1"].base_capacity_rps
        expected = min(1.0, per_dip_rate / (0.5 * base_capacity))
        assert result.dip_summaries["DIP-1"]["utilization"] == pytest.approx(
            expected
        )
        assert squeezed.metrics["mean_latency_ms"] > result.windows[0].metrics[
            "mean_latency_ms"
        ]

    def test_antagonist_phase_event_squeezes_and_clears(self):
        spec = timeline_spec(
            timeline=api.TimelineSpec(
                events=(
                    api.EventSpec(
                        time_s=5.0, kind="antagonist_phase", dip="DIP-1", value=4
                    ),
                    api.EventSpec(
                        time_s=15.0, kind="antagonist_phase", dip="DIP-1", value=0
                    ),
                ),
                window_s=5.0,
                horizon_s=25.0,
            ),
            controller=api.ControllerSpec(enabled=False),
        )
        result = api.execute(spec)
        series = result.window_series("mean_latency_ms")
        assert series[1] > series[0]  # squeeze raises latency
        assert series[-1] == pytest.approx(series[0])  # clearing restores it


class TestRequestSubstrate:
    def test_arrival_scale_changes_throughput(self):
        calm = timeline_spec(
            "request",
            timeline=api.TimelineSpec(window_s=5.0, horizon_s=40.0),
            controller=api.ControllerSpec(enabled=False),
        )
        surged = timeline_spec(
            "request",
            timeline=api.TimelineSpec(
                events=(
                    api.EventSpec(time_s=20.0, kind="arrival_scale", value=2.0),
                ),
                window_s=5.0,
                horizon_s=40.0,
            ),
            controller=api.ControllerSpec(enabled=False),
        )
        base = api.execute(calm)
        surge = api.execute(surged)
        base_reqs = base.window_series("requests")
        surge_reqs = surge.window_series("requests")
        # Before the surge the two runs are the same draw stream ...
        assert surge_reqs[0] == base_reqs[0]
        # ... after it, roughly twice the arrivals land per window.
        tail_ratio = sum(surge_reqs[-3:]) / sum(base_reqs[-3:])
        assert 1.6 < tail_ratio < 2.4

    def test_windows_cover_whole_measured_phase(self):
        result = api.execute(timeline_spec("request"))
        assert result.windows[0].start_s == 0.0
        assert result.windows[-1].end_s == pytest.approx(45.0)
        starts = [w.start_s for w in result.windows]
        assert starts == sorted(starts)

    def test_no_timeline_run_unchanged(self):
        """Empty timelines keep the request path on its original code."""
        spec = timeline_spec("request", timeline=api.TimelineSpec())
        result = api.execute(spec)
        assert result.windows == ()
        assert "timeline_events" not in result.metrics


class TestFleetSubstrate:
    def test_vip_onboard_and_offboard_via_timeline(self):
        spec = api.ExperimentSpec(
            name="fleet-join-leave",
            runner="fleet",
            pool=api.PoolSpec(kind="mixed_core", num_dips=12),
            workload=api.WorkloadSpec(load_fraction=0.5),
            fleet=api.FleetSpec(num_vips=4),
            timeline=api.TimelineSpec(
                events=(
                    api.EventSpec(time_s=10.0, kind="vip_onboard", vip="VIP-4"),
                    api.EventSpec(time_s=30.0, kind="vip_offboard", vip="VIP-1"),
                ),
                window_s=10.0,
                horizon_s=50.0,
            ),
            seed=23,
        )
        result = api.execute(spec)
        plane = result.detail["plane"]
        # VIP-4 was deferred out of initial convergence, then onboarded.
        assert result.metrics["vips_with_assignment"] == 3.0
        assert "VIP-4" in plane.steady_vips()
        # VIP-1 left: the fleet and the plane both forgot it.
        assert "VIP-1" not in plane.controllers
        assert result.metrics["num_vips"] == 3.0
        vips_series = result.window_series("num_vips")
        assert vips_series[0] == 4.0 and vips_series[-1] == 3.0

    def test_vip_events_rejected_on_single_vip_substrates(self):
        spec = timeline_spec(
            "fluid",
            timeline=api.TimelineSpec(
                events=(
                    api.EventSpec(time_s=5.0, kind="vip_onboard", vip="VIP-2"),
                )
            ),
        )
        with pytest.raises(ConfigurationError, match="needs the fleet runner"):
            api.execute(spec)

    def test_unknown_dip_named_before_running(self):
        spec = timeline_spec(
            "fluid",
            timeline=api.TimelineSpec(
                events=(
                    api.EventSpec(time_s=5.0, kind="dip_fail", dip="DIP-99"),
                )
            ),
        )
        with pytest.raises(ConfigurationError, match="unknown DIP 'DIP-99'"):
            api.execute(spec)

    def test_onboard_needs_controller(self):
        timeline = api.TimelineSpec(
            events=(api.EventSpec(time_s=5.0, kind="vip_onboard", vip="V"),)
        )
        with pytest.raises(ConfigurationError, match="controller.enabled"):
            check_timeline_supported(
                timeline,
                "fleet",
                dips=["D"],
                vips=["V"],
                controller_enabled=False,
            )


class TestObservers:
    def test_observers_stream_events_rounds_and_windows(self):
        recorder = WindowedMetricsObserver()

        class Rounds(BaseObserver):
            def __init__(self):
                self.times = []

            def on_round(self, time_s, metrics):
                self.times.append(time_s)

        rounds = Rounds()
        result = api.execute(
            timeline_spec(controller=api.ControllerSpec(enabled=False)),
            observers=[recorder, rounds],
        )
        assert [w for w in recorder.windows] == list(result.windows)
        assert [t for t, _ in recorder.applied_events] == [10.0, 20.0, 30.0]
        assert rounds.times == [w.end_s for w in result.windows]

    def test_request_runner_notifies_live_events(self):
        fired = []

        class Events(BaseObserver):
            def on_event(self, time_s, event):
                fired.append((time_s, event.kind))

        api.execute(timeline_spec("request"), observers=[Events()])
        assert fired == [
            (10.0, "dip_fail"),
            (20.0, "arrival_scale"),
            (30.0, "dip_recover"),
        ]

    def test_raising_observer_is_isolated_and_dropped(self, caplog):
        """A crashing telemetry consumer must never abort the run."""

        class Broken(BaseObserver):
            def on_window(self, window):
                raise RuntimeError("telemetry consumer crashed")

        recorder = WindowedMetricsObserver()
        observers = ObserverSet([Broken(), recorder])
        with caplog.at_level(logging.ERROR, logger="repro.api.timeline"):
            result = api.execute(
                timeline_spec(controller=api.ControllerSpec(enabled=False)),
                observers=observers.observers,
            )
        # run completed; healthy observer saw every window
        assert len(result.windows) == 9
        assert list(recorder.windows) == list(result.windows)

    def test_observer_set_drops_only_the_raiser(self, caplog):
        class Broken(BaseObserver):
            def on_round(self, time_s, metrics):
                raise ValueError("boom")

        healthy = WindowedMetricsObserver()
        fanout = ObserverSet([Broken(), healthy])
        with caplog.at_level(logging.ERROR, logger="repro.api.timeline"):
            fanout.on_round(1.0, {"x": 1.0})
        assert any("dropping it" in rec.message for rec in caplog.records)
        assert fanout.observers == (healthy,)
        # subsequent notifications reach the survivor without re-raising
        window = api.RunWindow(start_s=0.0, end_s=5.0, metrics={})
        fanout.on_window(window)
        assert list(healthy.windows) == [window]

    def test_windowed_observer_maxlen_keeps_only_newest(self):
        ring = WindowedMetricsObserver(maxlen=3)
        for index in range(6):
            ring.on_window(
                api.RunWindow(
                    start_s=float(index), end_s=index + 1.0, metrics={}
                )
            )
            ring.on_event(
                float(index),
                EventSpec(time_s=index + 1.0, kind="arrival_scale", value=2.0),
            )
        assert [w.start_s for w in ring.windows] == [3.0, 4.0, 5.0]
        assert [t for t, _ in ring.applied_events] == [3.0, 4.0, 5.0]


class TestScenarioTimelines:
    def test_outage_scenario_shows_fault_and_recovery(self):
        from repro.experiments.scenarios import run_scenario

        result = run_scenario("dip_outage_recovery", num_dips=6)
        assert result.metrics["outage_degradation"] > 1.0
        assert result.metrics["recovery_ratio"] < result.metrics[
            "outage_degradation"
        ]
        assert result.windows  # the trajectory rides along

    def test_no_fault_twin_is_flat(self):
        from repro.experiments.scenarios import run_scenario

        result = run_scenario(
            "dip_outage_recovery", num_dips=6, inject_fault=False
        )
        assert result.metrics["outage_degradation"] == pytest.approx(1.0, rel=1e-6)

    def test_diurnal_surge_peaks_and_returns(self):
        from repro.experiments.scenarios import run_scenario

        result = run_scenario("diurnal_surge", num_dips=6)
        assert result.metrics["surge_degradation"] > 1.0
        assert result.metrics["final_latency_ms"] == pytest.approx(
            result.metrics["baseline_latency_ms"], rel=0.25
        )

    def test_diurnal_surge_runs_on_request_engine(self):
        from repro.experiments.scenarios import run_scenario

        result = run_scenario(
            "diurnal_surge", num_dips=4, substrate="request", step_s=10.0
        )
        assert result.metrics["surge_degradation"] > 1.0


def test_window_rows_bucket_and_share():
    from repro.sim.trace import MetricsCollector

    collector = MetricsCollector()
    collector.record_request("A", 10.0, True, 0.5)
    collector.record_request("B", 20.0, True, 1.5)
    collector.record_request("A", None, False, 1.7)
    rows = collector.window_rows(window_s=1.0, start_s=0.0, end_s=3.0)
    assert len(rows) == 3
    assert rows[0]["metrics"]["requests"] == 1.0
    assert rows[1]["metrics"]["requests"] == 2.0
    assert rows[1]["metrics"]["drop_fraction"] == pytest.approx(0.5)
    assert rows[1]["dip_share"] == {"A": 0.5, "B": 0.5}
    assert rows[2]["metrics"]["requests"] == 0.0
    assert math.isnan(rows[2]["metrics"]["mean_latency_ms"])


class TestStepperWeightOverrides:
    """`TimelineStepper.set_weights`: validation, boundary application,
    and the provenance trail (the hook the learn env and the live
    service's ``POST /weights`` both drive)."""

    def stepper(self):
        from repro.api.runners import build_cluster
        from repro.api.timeline import fluid_timeline_stepper

        spec = timeline_spec()
        cluster = build_cluster(spec)
        return cluster, fluid_timeline_stepper(
            cluster, spec.timeline, BaseObserver(), seed=spec.seed
        )

    def test_override_applies_at_the_next_window_boundary(self):
        cluster, stepper = self.stepper()
        stepper.step()  # clock -> 5.0
        target = next(iter(cluster.dips))
        label = stepper.set_weights(
            None, {d: 1.0 for d in cluster.dips} | {target: 50.0}
        )
        assert "set_weights" in label
        window = stepper.step()
        assert label in window.events
        assert window.dip_share[target] > 0.5
        assert stepper.weight_overrides[0][0] == 5.0  # applied at the boundary

    def test_queued_overrides_do_not_apply_early(self):
        cluster, stepper = self.stepper()
        stepper.set_weights(None, {next(iter(cluster.dips)): 2.0})
        assert stepper.weight_overrides == []  # queued, not yet applied
        stepper.step()
        assert len(stepper.weight_overrides) == 1

    def test_explicit_vip_must_match_the_scope(self):
        cluster, stepper = self.stepper()
        first = next(iter(cluster.dips))
        assert "set_weights" in stepper.set_weights("vip", {first: 1.0})
        with pytest.raises(ConfigurationError, match="unknown VIP"):
            stepper.set_weights("vip-9", {first: 1.0})

    @pytest.mark.parametrize(
        "weights, message",
        [
            ({}, "non-empty"),
            ({"DIP-404": 1.0}, "unknown DIP"),
            ({"DIP-1": -1.0}, "finite and >= 0"),
            ({"DIP-1": float("nan")}, "finite and >= 0"),
            ({"DIP-1": 0.0, "DIP-2": 0.0}, "positive value"),
            ({"DIP-1": "heavy"}, "must be a number"),
        ],
    )
    def test_bad_override_bodies_rejected_at_submission(self, weights, message):
        _, stepper = self.stepper()
        with pytest.raises(ConfigurationError, match=message):
            stepper.set_weights(None, weights)

    def test_request_batch_runner_has_no_weight_hook(self):
        from repro.api.timeline import TimelineStepper

        spec = timeline_spec()
        stepper = TimelineStepper(
            spec.timeline,
            BaseObserver(),
            advance=lambda dt: None,
            tick=lambda: None,
            snapshot=lambda: ({}, {}, {}),
            apply_event=lambda event: None,
        )
        with pytest.raises(ConfigurationError, match="weight overrides"):
            stepper.set_weights(None, {"DIP-1": 1.0})

"""Unit tests for drain-time estimation (§4.7)."""

from __future__ import annotations

import pytest

from repro.core.drain import DrainTimeEstimator, analytic_drain_time_s
from repro.exceptions import ConfigurationError


class FakeDeployment:
    """A target whose latency decays back to l0 over a fixed drain period."""

    def __init__(self, l0_ms: float = 2.0, drain_s: float = 6.0) -> None:
        self.l0_ms = l0_ms
        self.drain_s = drain_s
        self.now = 0.0
        self.weights: dict[str, float] = {}
        self._high_since: float | None = None
        self._zero_since: float | None = None

    def set_dip_weight(self, dip: str, weight: float) -> None:
        self.weights[dip] = weight
        if weight > 0:
            self._high_since = self.now
            self._zero_since = None
        else:
            self._zero_since = self.now

    def advance(self, duration_s: float) -> None:
        self.now += duration_s

    def probe_latency_ms(self, dip: str) -> float:
        if self._zero_since is None:
            return self.l0_ms * 8.0
        elapsed = self.now - self._zero_since
        if elapsed >= self.drain_s:
            return self.l0_ms
        # Linear decay back towards l0 while old connections finish.
        fraction = 1.0 - elapsed / self.drain_s
        return self.l0_ms * (1.0 + 7.0 * fraction)


class TestMeasure:
    def test_estimate_close_to_true_drain_time(self):
        deployment = FakeDeployment(drain_s=6.0)
        estimator = DrainTimeEstimator(poll_interval_s=1.0)
        estimate = estimator.measure(
            deployment, "d1", l0_ms=2.0, high_weight=0.8, load_duration_s=5.0
        )
        assert estimate.drain_time_s == pytest.approx(6.0, abs=1.5)

    def test_estimate_cached(self):
        deployment = FakeDeployment()
        estimator = DrainTimeEstimator()
        estimator.measure(deployment, "d1", l0_ms=2.0, high_weight=0.8)
        assert estimator.drain_time_s("d1") > 0

    def test_default_for_unmeasured_dip(self):
        estimator = DrainTimeEstimator()
        assert estimator.drain_time_s("unknown", default=12.0) == pytest.approx(12.0)

    def test_max_wait_bounds_measurement(self):
        deployment = FakeDeployment(drain_s=1000.0)
        estimator = DrainTimeEstimator(poll_interval_s=1.0, max_wait_s=5.0)
        estimate = estimator.measure(deployment, "d1", l0_ms=2.0, high_weight=0.8)
        assert estimate.drain_time_s <= 5.0 + 1e-9

    def test_invalid_high_weight(self):
        estimator = DrainTimeEstimator()
        with pytest.raises(ConfigurationError):
            estimator.measure(FakeDeployment(), "d1", l0_ms=2.0, high_weight=0.0)

    def test_invalid_l0(self):
        estimator = DrainTimeEstimator()
        with pytest.raises(ConfigurationError):
            estimator.measure(FakeDeployment(), "d1", l0_ms=0.0, high_weight=0.5)


class TestRecalibration:
    def test_unmeasured_needs_recalibration(self):
        estimator = DrainTimeEstimator()
        assert estimator.needs_recalibration("d1", now=0.0)

    def test_fresh_measurement_does_not(self):
        deployment = FakeDeployment()
        estimator = DrainTimeEstimator()
        estimate = estimator.measure(deployment, "d1", l0_ms=2.0, high_weight=0.8)
        assert not estimator.needs_recalibration("d1", now=estimate.measured_at + 60.0)

    def test_stale_measurement_does(self):
        deployment = FakeDeployment()
        estimator = DrainTimeEstimator(recalibration_interval_s=100.0)
        estimate = estimator.measure(deployment, "d1", l0_ms=2.0, high_weight=0.8)
        assert estimator.needs_recalibration("d1", now=estimate.measured_at + 101.0)


class TestEstimatorValidation:
    def test_settle_factor_must_exceed_one(self):
        with pytest.raises(ConfigurationError):
            DrainTimeEstimator(settle_factor=1.0)

    def test_poll_interval_positive(self):
        with pytest.raises(ConfigurationError):
            DrainTimeEstimator(poll_interval_s=0.0)


class TestAnalyticDrainTime:
    def test_scales_with_in_flight(self):
        assert analytic_drain_time_s(100.0, in_flight=50.0) == pytest.approx(1.0)

    def test_zero_in_flight(self):
        assert analytic_drain_time_s(100.0, in_flight=0.0) == 0.0

    def test_invalid_capacity(self):
        with pytest.raises(ConfigurationError):
            analytic_drain_time_s(0.0, in_flight=1.0)

    def test_negative_in_flight(self):
        with pytest.raises(ConfigurationError):
            analytic_drain_time_s(10.0, in_flight=-1.0)

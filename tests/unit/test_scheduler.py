"""Unit tests for measurement scheduling (§4.6)."""

from __future__ import annotations

import pytest

from repro.core.curve import WeightLatencyCurve
from repro.core.scheduler import (
    MeasurementPriority,
    MeasurementRequest,
    MeasurementScheduler,
)
from repro.exceptions import SchedulingError


def curve(w_max: float) -> WeightLatencyCurve:
    return WeightLatencyCurve(coefficients=(50.0, 0.0, 2.0), l0_ms=2.0, w_max=w_max)


@pytest.fixture
def scheduler():
    return MeasurementScheduler("vip-1")


class TestRequestValidation:
    def test_zero_weight_rejected(self):
        with pytest.raises(SchedulingError):
            MeasurementRequest(dip="a", weight=0.0)

    def test_above_one_rejected(self):
        with pytest.raises(SchedulingError):
            MeasurementRequest(dip="a", weight=1.2)


class TestQueueing:
    def test_submit_and_pending(self, scheduler):
        scheduler.submit("a", 0.2)
        scheduler.submit("b", 0.3)
        assert {r.dip for r in scheduler.pending} == {"a", "b"}

    def test_resubmit_replaces(self, scheduler):
        scheduler.submit("a", 0.2)
        scheduler.submit("a", 0.4)
        pending = [r for r in scheduler.pending if r.dip == "a"]
        assert len(pending) == 1
        assert pending[0].weight == pytest.approx(0.4)

    def test_cancel(self, scheduler):
        scheduler.submit("a", 0.2)
        scheduler.cancel("a")
        assert not scheduler.has_pending

    def test_priority_ordering(self, scheduler):
        scheduler.submit("refresh", 0.1, priority=MeasurementPriority.REFRESH)
        scheduler.submit("normal", 0.1, priority=MeasurementPriority.NORMAL)
        scheduler.submit("hot", 0.1, priority=MeasurementPriority.OVERUTILIZED)
        assert [r.dip for r in scheduler.pending] == ["hot", "normal", "refresh"]

    def test_fifo_within_class(self, scheduler):
        scheduler.submit("first", 0.1)
        scheduler.submit("second", 0.1)
        assert [r.dip for r in scheduler.pending] == ["first", "second"]


class TestPlanRound:
    def test_all_fit_in_one_round(self, scheduler):
        scheduler.submit("a", 0.3)
        scheduler.submit("b", 0.3)
        plan = scheduler.plan_round(["a", "b", "c"])
        assert plan.measured == {"a": 0.3, "b": 0.3}
        assert not plan.deferred
        assert plan.total_weight == pytest.approx(1.0)

    def test_overflow_deferred_to_next_round(self, scheduler):
        scheduler.submit("a", 0.7)
        scheduler.submit("b", 0.7)
        plan1 = scheduler.plan_round(["a", "b"])
        assert set(plan1.measured) == {"a"}
        assert [r.dip for r in plan1.deferred] == ["b"]
        plan2 = scheduler.plan_round(["a", "b"])
        assert set(plan2.measured) == {"b"}

    def test_two_rounds_consume_queue(self, scheduler):
        scheduler.submit("a", 0.7)
        scheduler.submit("b", 0.7)
        scheduler.plan_round(["a", "b"])
        scheduler.plan_round(["a", "b"])
        assert not scheduler.has_pending

    def test_higher_priority_scheduled_first_on_conflict(self, scheduler):
        scheduler.submit("cold", 0.8, priority=MeasurementPriority.NORMAL)
        scheduler.submit("hot", 0.8, priority=MeasurementPriority.OVERUTILIZED)
        plan = scheduler.plan_round(["cold", "hot"])
        assert set(plan.measured) == {"hot"}

    def test_unknown_dip_request_dropped(self, scheduler):
        scheduler.submit("gone", 0.4)
        plan = scheduler.plan_round(["a", "b"])
        assert plan.measured == {}
        assert not scheduler.has_pending

    def test_weights_sum_to_one_with_filler(self, scheduler):
        scheduler.submit("a", 0.25)
        plan = scheduler.plan_round(["a", "b", "c", "d"])
        assert plan.total_weight == pytest.approx(1.0)
        assert plan.measured["a"] == pytest.approx(0.25)
        assert set(plan.filler) == {"b", "c", "d"}

    def test_equal_filler_when_no_curves(self, scheduler):
        scheduler.submit("a", 0.4)
        plan = scheduler.plan_round(["a", "b", "c"])
        assert plan.filler_source == "equal"
        assert plan.filler["b"] == pytest.approx(0.3)
        assert plan.filler["c"] == pytest.approx(0.3)

    def test_ilp_filler_when_curves_available(self, scheduler):
        scheduler.submit("a", 0.4)
        curves = {"b": curve(0.5), "c": curve(0.3)}
        plan = scheduler.plan_round(["a", "b", "c"], curves)
        assert plan.filler_source == "ilp"
        assert sum(plan.filler.values()) == pytest.approx(0.6, abs=1e-6)
        assert all(weight >= 0 for weight in plan.filler.values())

    def test_ilp_filler_prefers_flatter_curve(self, scheduler):
        scheduler.submit("a", 0.4)
        steep = WeightLatencyCurve(coefficients=(400.0, 0.0, 2.0), l0_ms=2.0, w_max=0.5)
        flat = WeightLatencyCurve(coefficients=(20.0, 0.0, 2.0), l0_ms=2.0, w_max=0.5)
        plan = scheduler.plan_round(["a", "b", "c"], {"b": flat, "c": steep})
        assert plan.filler["b"] >= plan.filler["c"] - 1e-9

    def test_ilp_filler_falls_back_when_infeasible(self, scheduler):
        scheduler.submit("a", 0.2)
        # Curves whose w_max cannot absorb the 0.8 remainder → ILP infeasible
        # for the explored DIP alone → equal split over the remaining DIPs.
        curves = {"b": curve(0.05)}
        plan = scheduler.plan_round(["a", "b", "c"], curves)
        assert plan.total_weight == pytest.approx(1.0)
        assert plan.filler_source in ("ilp", "equal")

    def test_no_filler_needed_when_budget_exhausted(self, scheduler):
        scheduler.submit("a", 0.6)
        scheduler.submit("b", 0.4)
        plan = scheduler.plan_round(["a", "b", "c"])
        assert plan.filler["c"] == pytest.approx(0.0)

    def test_empty_queue_round_is_pure_filler(self, scheduler):
        plan = scheduler.plan_round(["a", "b"])
        assert plan.measured == {}
        assert plan.total_weight == pytest.approx(1.0)

    def test_weights_method_merges_measured_and_filler(self, scheduler):
        scheduler.submit("a", 0.5)
        plan = scheduler.plan_round(["a", "b"])
        combined = plan.weights()
        assert combined["a"] == pytest.approx(0.5)
        assert combined["b"] == pytest.approx(0.5)

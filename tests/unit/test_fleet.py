"""Unit tests for the multi-VIP fleet substrate and its control plane.

Covers the Fleet abstraction (shared DIPs, contention, deployment views),
measurement round packing with interleaved VIPs (§4.6 at fleet scale) and
the FleetController lifecycle.
"""

from __future__ import annotations

import pytest

from repro.backends import DipServer, custom_vm_type
from repro.core import FleetController, VipPhase
from repro.core.scheduler import MeasurementPriority, MeasurementScheduler
from repro.exceptions import ConfigurationError
from repro.sim import Fleet, FluidCluster
from repro.workloads import build_shared_dip_fleet


def make_fleet(num_dips=6, capacity=400.0, cores=1):
    fleet = Fleet()
    vm = custom_vm_type(f"vm-{cores}", vcpus=cores, capacity_rps=capacity)
    for index in range(num_dips):
        fleet.add_dip(
            DipServer(f"d{index}", vm, seed=index, jitter_fraction=0.0)
        )
    return fleet


class TestFleet:
    def test_unknown_dip_rejected(self):
        fleet = make_fleet(2)
        with pytest.raises(ConfigurationError):
            fleet.create_vip("v", dip_ids=["nope"], total_rate_rps=10.0)

    def test_duplicate_vip_rejected(self):
        fleet = make_fleet(2)
        fleet.create_vip("v", dip_ids=["d0"], total_rate_rps=10.0)
        with pytest.raises(ConfigurationError):
            fleet.create_vip("v", dip_ids=["d1"], total_rate_rps=10.0)

    def test_shared_dip_carries_sum_of_vip_rates(self):
        fleet = make_fleet(3)
        fleet.create_vip("a", dip_ids=["d0", "d1"], total_rate_rps=200.0, policy_name="rr")
        fleet.create_vip("b", dip_ids=["d1", "d2"], total_rate_rps=100.0, policy_name="rr")
        state = fleet.apply()
        assert state.total_rates_rps["d0"] == pytest.approx(100.0)
        assert state.total_rates_rps["d1"] == pytest.approx(150.0)  # 100 + 50
        assert state.total_rates_rps["d2"] == pytest.approx(50.0)
        assert fleet.shared_dip_ids() == ("d1",)
        assert state.per_vip_rates["a"]["d1"] == pytest.approx(100.0)
        assert state.per_vip_rates["b"]["d1"] == pytest.approx(50.0)

    def test_contention_raises_latency_on_shared_dip(self):
        fleet = make_fleet(3)
        fleet.create_vip("a", dip_ids=["d0", "d1"], total_rate_rps=300.0, policy_name="rr")
        solo = fleet.apply().mean_latency_ms["d1"]
        fleet.create_vip("b", dip_ids=["d1", "d2"], total_rate_rps=300.0, policy_name="rr")
        shared = fleet.apply().mean_latency_ms["d1"]
        assert shared > solo

    def test_load_dependent_policy_avoids_contended_dip(self):
        """An LC tenant steers away from the DIP another VIP is loading."""
        fleet = make_fleet(3)
        fleet.create_vip("heavy", dip_ids=["d0"], total_rate_rps=350.0, policy_name="rr")
        fleet.create_vip("lc", dip_ids=["d0", "d1", "d2"], total_rate_rps=300.0, policy_name="lc")
        state = fleet.apply()
        lc_rates = state.per_vip_rates["lc"]
        assert lc_rates["d0"] < lc_rates["d1"]
        assert lc_rates["d0"] < lc_rates["d2"]

    def test_failed_dip_gets_no_rate_and_infinite_latency(self):
        fleet = make_fleet(3)
        fleet.create_vip("a", dip_ids=["d0", "d1", "d2"], total_rate_rps=300.0, policy_name="rr")
        fleet.fail_dip("d2")
        state = fleet.state()
        assert state.total_rates_rps["d2"] == 0.0
        assert state.mean_latency_ms["d2"] == float("inf")
        assert state.total_rates_rps["d0"] == pytest.approx(150.0)

    def test_all_dips_failed_raises(self):
        fleet = make_fleet(1)
        fleet.create_vip("a", dip_ids=["d0"], total_rate_rps=10.0)
        fleet.dips["d0"].fail()
        with pytest.raises(ConfigurationError):
            fleet.apply()

    def test_view_satisfies_deployment_protocol(self):
        fleet = make_fleet(4)
        fleet.create_vip("a", dip_ids=["d0", "d1"], total_rate_rps=100.0)
        view = fleet.view("a")
        assert set(view.dips) == {"d0", "d1"}
        assert view.healthy_dip_ids() == ("d0", "d1")
        view.set_weights({"d0": 0.7, "d1": 0.3})
        state = fleet.state()
        assert state.per_vip_rates["a"]["d0"] == pytest.approx(70.0)
        view.advance(5.0)
        assert fleet.time == pytest.approx(5.0)
        with pytest.raises(ConfigurationError):
            view.set_weights({"d3": 1.0})  # not this VIP's DIP

    def test_advance_moves_shared_clock(self):
        fleet = make_fleet(2)
        fleet.create_vip("a", dip_ids=["d0"], total_rate_rps=10.0)
        fleet.advance(3.0)
        fleet.advance(2.0)
        assert fleet.time == pytest.approx(5.0)

    def test_vip_mean_latency_weighs_own_rates(self):
        fleet = make_fleet(2)
        fleet.create_vip("a", dip_ids=["d0", "d1"], total_rate_rps=200.0, policy_name="rr")
        state = fleet.apply()
        assert state.vip_mean_latency_ms("a") == pytest.approx(
            state.overall_mean_latency_ms()
        )


class TestFluidClusterIsOneVipFleet:
    def test_single_vip_cluster_behaviour_unchanged(self):
        vm = custom_vm_type("vm", vcpus=1, capacity_rps=400.0)
        dips = {f"d{i}": DipServer(f"d{i}", vm, seed=i) for i in range(3)}
        cluster = FluidCluster(dips=dips, total_rate_rps=600.0, policy_name="rr")
        state = cluster.state()
        for rate in state.rates_rps.values():
            assert rate == pytest.approx(200.0)
        cluster.set_weights({"d0": 0.5, "d1": 0.25, "d2": 0.25})
        cluster.policy_name = "rr"  # weights ignored under rr
        assert cluster.total_capacity_rps == pytest.approx(1200.0)

    def test_cluster_time_tracks_fleet_advance(self):
        vm = custom_vm_type("vm", vcpus=1, capacity_rps=400.0)
        dips = {"d0": DipServer("d0", vm, seed=0)}
        cluster = FluidCluster(dips=dips, total_rate_rps=100.0)
        cluster.advance(7.5)
        assert cluster.time == pytest.approx(7.5)


class TestInterleavedRoundPacking:
    """§4.6 round packing when several VIPs share DIPs (satellite task)."""

    def test_excluded_dip_not_measured_but_stays_queued(self):
        scheduler = MeasurementScheduler("vip-1")
        scheduler.submit("a", 0.3)
        scheduler.submit("b", 0.3)
        plan = scheduler.plan_round(["a", "b", "c"], exclude={"a"})
        assert "a" not in plan.measured
        assert plan.measured == {"b": pytest.approx(0.3)}
        # The excluded request is deferred, not dropped.
        assert {r.dip for r in scheduler.pending} == {"a"}
        follow_up = scheduler.plan_round(["a", "b", "c"])
        assert set(follow_up.measured) == {"a"}

    def test_excluded_dip_may_still_get_filler(self):
        scheduler = MeasurementScheduler("vip-1")
        scheduler.submit("a", 0.4)
        plan = scheduler.plan_round(["a", "b"], exclude={"b"})
        assert plan.measured == {"a": pytest.approx(0.4)}
        assert plan.filler["b"] == pytest.approx(0.6)

    def test_no_dip_measured_twice_across_vips_in_one_round(self):
        first = MeasurementScheduler("vip-1")
        second = MeasurementScheduler("vip-2")
        for scheduler in (first, second):
            scheduler.submit("shared-1", 0.2)
            scheduler.submit("shared-2", 0.2)

        claimed: set[str] = set()
        plan_one = first.plan_round(["shared-1", "shared-2"], exclude=claimed)
        claimed.update(plan_one.measured)
        plan_two = second.plan_round(["shared-1", "shared-2"], exclude=claimed)
        assert not set(plan_one.measured) & set(plan_two.measured)
        # vip-2's excluded requests survive to the next fleet round.
        remaining = {r.dip for r in second.pending}
        assert remaining == set(plan_one.measured)

    def test_priorities_respected_under_exclusion(self):
        scheduler = MeasurementScheduler("vip-1")
        scheduler.submit("cold", 0.8, priority=MeasurementPriority.NORMAL)
        scheduler.submit("hot", 0.8, priority=MeasurementPriority.OVERUTILIZED)
        plan = scheduler.plan_round(["cold", "hot"], exclude={"hot"})
        # The over-utilized DIP is claimed elsewhere; the normal one fits now.
        assert set(plan.measured) == {"cold"}
        follow_up = scheduler.plan_round(["cold", "hot"])
        assert set(follow_up.measured) == {"hot"}


class TestSharedDipFleetBuilder:
    def test_single_vip_fleet_default_pool_size(self):
        """Regression: the default pool_size must clamp to the fleet size."""
        fleet = build_shared_dip_fleet(num_vips=1, num_dips=4, seed=1)
        assert len(fleet.vips) == 1
        (vip,) = fleet.vips.values()
        assert len(vip.dips) == 4

    def test_state_reflects_vip_added_after_apply(self):
        fleet = build_shared_dip_fleet(num_vips=2, num_dips=4, seed=2)
        fleet.apply()
        fleet.create_vip(
            "late", dip_ids=list(fleet.dips)[:2], total_rate_rps=50.0
        )
        assert "late" in fleet.state().per_vip_rates


class TestFleetController:
    def make_plane(self, num_vips=3, num_dips=9):
        fleet = build_shared_dip_fleet(
            num_vips=num_vips,
            num_dips=num_dips,
            load_fraction=0.4,
            core_choices=(1, 2),
            seed=5,
        )
        return fleet, FleetController(fleet)

    def test_onboard_requires_fleet_vip(self):
        fleet, plane = self.make_plane()
        with pytest.raises(ConfigurationError):
            plane.onboard_vip("not-a-vip")

    def test_measurement_interleaves_and_never_double_measures(self):
        fleet, plane = self.make_plane()
        for vip_id in fleet.vips:
            plane.onboard_vip(vip_id)
        report = plane.run_measurement_phase()
        assert report.rounds > 0
        assert report.interleaved_rounds > 0
        assert set(report.reports) == set(fleet.vips)
        for entry in plane.round_log:
            measured = entry.measured_dips()
            assert len(measured) == len(set(measured))  # no DIP twice/round

    def test_all_vips_reach_steady_state_with_assignments(self):
        fleet, plane = self.make_plane()
        for vip_id in fleet.vips:
            plane.onboard_vip(vip_id)
        assignments = plane.converge_all()
        assert set(assignments) == set(fleet.vips)
        for vip_id, assignment in assignments.items():
            assert sum(assignment.weights.values()) == pytest.approx(1.0)
            assert plane.phases[vip_id] is VipPhase.STEADY

    def test_control_step_advances_fleet_once(self):
        fleet, plane = self.make_plane(num_vips=2, num_dips=6)
        for vip_id in fleet.vips:
            plane.onboard_vip(vip_id)
        plane.converge_all(settle_steps=0)
        before = fleet.time
        plane.control_step()
        interval = plane.config.control_interval_s
        assert fleet.time == pytest.approx(before + interval)
        for controller in plane.controllers.values():
            assert controller.time == pytest.approx(fleet.time)

    def test_shared_failure_seen_by_every_sharing_vip(self):
        fleet, plane = self.make_plane()
        for vip_id in fleet.vips:
            plane.onboard_vip(vip_id)
        plane.converge_all(settle_steps=2)
        shared = fleet.shared_dip_ids()
        assert shared
        victim = shared[0]
        owners = [v for v, vip in fleet.vips.items() if victim in vip.dips]
        assert len(owners) >= 2
        fleet.dips[victim].fail()
        for _ in range(plane.config.dynamics.failure_probe_threshold + 1):
            plane.control_step()
        for vip_id in owners:
            assert victim in plane.controllers[vip_id].failed_dips
            weights = plane.controllers[vip_id].current_weights
            assert weights.get(victim, 0.0) == 0.0

"""The ``learn`` verb group and the list/validate learner extensions."""

from __future__ import annotations

import json

import pytest

from repro.api.cli import main
from repro.api.result import RunResult


def run_cli(capsys, *argv: str) -> str:
    code = main(list(argv))
    captured = capsys.readouterr()
    assert code == 0, f"exit {code}; stderr: {captured.err}"
    return captured.out


SMALL_ENV = (
    "--set", "env.num_dips=4",
    "--set", "env.load_fraction=0.5",
)


class TestListExtensions:
    def test_list_shows_agents_shapes_and_named_specs(self, capsys):
        out = run_cli(capsys, "list")
        assert "Learning agents" in out
        assert "bandit" in out and "reinforce" in out
        assert "Learning episode shapes" in out
        assert "dip_outage_recovery" in out
        assert "Named learn specs" in out
        assert "bandit_outage" in out

    def test_list_still_shows_policies_and_specs(self, capsys):
        out = run_cli(capsys, "list")
        assert "Registered specs" in out
        assert "LB policies" in out
        assert "wrr" in out


class TestValidateLearnSpecs:
    def test_named_learn_spec_validates(self, capsys):
        out = run_cli(capsys, "validate", "bandit_outage")
        assert "learn spec 'bandit_outage' is valid" in out
        assert "agent=bandit" in out

    def test_learn_spec_file_validates(self, capsys, tmp_path):
        path = tmp_path / "learn.json"
        path.write_text(
            json.dumps(
                {
                    "name": "from-file",
                    "env": {"scenario": "diurnal_surge"},
                    "agent": {"name": "reinforce"},
                    "episodes": 5,
                }
            )
        )
        out = run_cli(capsys, "validate", str(path))
        assert "learn spec 'from-file' is valid" in out
        assert "diurnal_surge" in out

    def test_unknown_learn_field_exits_with_dotted_path(self, capsys):
        code = main(
            ["validate", "bandit_outage", "--set", "agent.epsilonn=0.5"]
        )
        captured = capsys.readouterr()
        assert code == 2
        assert "learn.agent.epsilonn" in captured.err

    def test_experiment_specs_still_validate(self, capsys):
        out = run_cli(capsys, "validate", "fluid_uniform_pool")
        assert "spec 'fluid_uniform_pool' is valid" in out


class TestLearnTrain:
    def test_train_prints_history_and_writes_artifacts(
        self, capsys, tmp_path
    ):
        ck = tmp_path / "ck.json"
        out_file = tmp_path / "train.json"
        out = run_cli(
            capsys, "learn", "train", "bandit_outage",
            *SMALL_ENV,
            "--set", "episodes=2",
            "--set", "eval_every=0",
            "--checkpoint", str(ck),
            "-o", str(out_file),
        )
        assert "bandit_outage" in out
        assert "return" in out
        checkpoint = json.loads(ck.read_text())
        assert checkpoint["next_episode"] == 2
        result = json.loads(out_file.read_text())
        assert len(result["history"]) == 2

    def test_train_resume_reaches_the_new_budget(self, capsys, tmp_path):
        ck = tmp_path / "ck.json"
        run_cli(
            capsys, "learn", "train", "bandit_outage",
            *SMALL_ENV, "--set", "episodes=1", "--set", "eval_every=0",
            "--checkpoint", str(ck),
        )
        run_cli(
            capsys, "learn", "train", "bandit_outage",
            *SMALL_ENV, "--set", "episodes=2", "--set", "eval_every=0",
            "--checkpoint", str(ck), "--resume",
        )
        assert json.loads(ck.read_text())["next_episode"] == 2


class TestLearnEval:
    def test_eval_reports_greedy_returns(self, capsys, tmp_path):
        ck = tmp_path / "ck.json"
        run_cli(
            capsys, "learn", "train", "bandit_outage",
            *SMALL_ENV, "--set", "episodes=1", "--set", "eval_every=0",
            "--checkpoint", str(ck),
        )
        out_file = tmp_path / "eval.json"
        out = run_cli(
            capsys, "learn", "eval",
            "--checkpoint", str(ck),
            "--episodes", "2",
            "-o", str(out_file),
        )
        assert "mean_return" in out
        report = json.loads(out_file.read_text())
        assert report["agent"] == "bandit"
        assert len(report["episodes"]) == 2

    def test_missing_checkpoint_is_a_clean_error(self, capsys, tmp_path):
        code = main(
            ["learn", "eval", "--checkpoint", str(tmp_path / "nope.json")]
        )
        captured = capsys.readouterr()
        assert code == 2
        assert "does not exist" in captured.err


class TestLearnCompare:
    def test_compare_renders_contenders_and_writes_artifacts(
        self, capsys, tmp_path
    ):
        out_dir = tmp_path / "cmp"
        out = run_cli(
            capsys, "learn", "compare",
            "--scenario", "dip_outage_recovery",
            "--set", "num_dips=4",
            "--set", "load_fraction=0.5",
            "--agents", "uniform,random,bandit",
            "--train-episodes", "2",
            "--eval-episodes", "1",
            "-o", str(out_dir),
        )
        assert "episode_reward" in out
        assert "uniform" in out and "random" in out and "bandit" in out
        saved = RunResult.load(out_dir / "uniform.json")
        assert "episode_reward" in saved.metrics
        assert (out_dir / "comparison.json").exists()

    def test_unknown_contender_is_a_clean_error(self, capsys):
        code = main(["learn", "compare", "--agents", "dqn"])
        captured = capsys.readouterr()
        assert code == 2
        assert "unknown contender" in captured.err

    def test_bad_checkpoint_mapping_is_a_clean_error(self, capsys):
        code = main(["learn", "compare", "--checkpoint", "bandit"])
        captured = capsys.readouterr()
        assert code == 2
        assert "agent=path" in captured.err

"""The robustness envelope: spec wiring, divergence guard, planner screens.

Covers the cross-substrate contract for bursty / heavy-tailed workloads:

* ``ArrivalSpec`` / ``ServiceSpec`` validation reports dotted paths;
* the fluid twin applies the Allen-Cunneen correction and stamps a
  ``model_divergence`` warning into provenance exactly when the workload
  breaks the M/M/c assumptions (silent on the Poisson baseline);
* the shard planner downgrades non-Poisson / non-exponential runs to
  serial with a logged reason, and the downgraded run's metrics are
  bit-identical to the serial path;
* ``arrival_scale`` timeline events rescale non-Poisson generators;
* the robustness scenarios and CLI surfaces expose the new kinds.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.api.cli import main as cli_main
from repro.api.result import RunResult
from repro.api.runners import execute
from repro.api.spec import (
    ArrivalSpec,
    EventSpec,
    ExperimentSpec,
    PoolSpec,
    ServiceSpec,
    TimelineSpec,
    WorkloadSpec,
)
from repro.backends import DipServer, custom_vm_type
from repro.backends.latency_model import LatencyModel
from repro.exceptions import ConfigurationError
from repro.sim.fluid import pool_arrays, vector_mean_latency_ms
from repro.workloads.divergence import (
    MAX_CORRECTION,
    arrival_scv,
    assess_divergence,
    scv_correction,
    service_scv,
)


def _spec(runner="fluid", *, arrival=None, service=None, **workload_kwargs):
    workload_kwargs.setdefault("load_fraction", 0.6)
    if arrival is not None:
        workload_kwargs["arrival"] = arrival
    if service is not None:
        workload_kwargs["service"] = service
    return ExperimentSpec(
        name="robustness-test",
        runner=runner,
        pool=PoolSpec(kind="uniform", num_dips=4),
        workload=WorkloadSpec(**workload_kwargs),
        seed=11,
    )


BURSTY = dict(
    arrival=ArrivalSpec(kind="mmpp"),
    service=ServiceSpec(kind="pareto", tail_index=2.2),
)


# -- spec validation ----------------------------------------------------------


class TestSpecValidation:
    def test_arrival_kind_dotted_path(self):
        with pytest.raises(ConfigurationError, match="workload.arrival.kind"):
            ExperimentSpec.from_dict(
                {"name": "x", "workload": {"arrival": {"kind": "fractal"}}}
            )

    def test_service_kind_dotted_path(self):
        with pytest.raises(ConfigurationError, match="workload.service.kind"):
            ExperimentSpec.from_dict(
                {"name": "x", "workload": {"service": {"kind": "bimodal"}}}
            )

    def test_mismatched_fields_name_their_kind(self):
        with pytest.raises(
            ConfigurationError, match="workload.arrival.burst_"
        ):
            ArrivalSpec(kind="mmpp", burst_height=2.0)
        with pytest.raises(
            ConfigurationError, match="workload.service.tail_index"
        ):
            ServiceSpec(kind="lognormal", tail_index=3.0)

    def test_mmpp_defaults_fill_in(self):
        spec = ArrivalSpec(kind="mmpp")
        assert len(spec.state_rates) == 2
        assert len(spec.switch_rates) == 2

    def test_trace_requires_path(self):
        with pytest.raises(
            ConfigurationError, match="workload.arrival.trace_path"
        ):
            ArrivalSpec(kind="trace")

    def test_divergence_tolerance_validated(self):
        with pytest.raises(
            ConfigurationError, match="divergence_tolerance"
        ):
            WorkloadSpec(divergence_tolerance=-1.0)

    def test_preserve_rate_trace_rejects_arrival_scale_events(self, tmp_path):
        trace = tmp_path / "t.csv"
        trace.write_text(
            "timestamp\n" + "\n".join(str(i * 0.01) for i in range(50)) + "\n"
        )
        arrival = ArrivalSpec(
            kind="trace", trace_path=str(trace), preserve_rate=True
        )
        with pytest.raises(ConfigurationError, match="arrival_scale"):
            ExperimentSpec(
                name="x",
                runner="request",
                workload=WorkloadSpec(arrival=arrival),
                timeline=TimelineSpec(
                    events=(
                        EventSpec(
                            time_s=1.0, kind="arrival_scale", value=2.0
                        ),
                    ),
                    horizon_s=10.0,
                ),
            )

    def test_spec_round_trips_through_dict(self):
        spec = _spec("request", **BURSTY)
        clone = ExperimentSpec.from_dict(
            json.loads(json.dumps(spec.to_dict()))
        )
        assert clone.workload.arrival == spec.workload.arrival
        assert clone.workload.service == spec.workload.service


# -- the SCV correction and divergence guard ----------------------------------


class TestDivergenceModel:
    def test_poisson_exponential_is_exactly_one(self):
        assert scv_correction(WorkloadSpec(), 1000.0) == 1.0
        assert assess_divergence(WorkloadSpec(), 1000.0) is None

    def test_service_scv_values(self):
        assert service_scv(ServiceSpec()) == 1.0
        assert service_scv(ServiceSpec(kind="lognormal", scv=3.0)) == 3.0
        assert service_scv(
            ServiceSpec(kind="pareto", tail_index=1.5)
        ) == float("inf")

    def test_infinite_variance_is_clamped(self):
        workload = WorkloadSpec(
            service=ServiceSpec(kind="pareto", tail_index=1.5)
        )
        corr = scv_correction(workload, 1000.0)
        assert corr == MAX_CORRECTION
        assert np.isfinite(corr)

    def test_arrival_scv_grows_with_rate(self):
        arrival = ArrivalSpec(kind="mmpp")
        assert arrival_scv(arrival, 2000.0) > arrival_scv(arrival, 200.0) > 1.0

    def test_latency_model_correction_scales_waiting_only(self):
        model = LatencyModel(servers=4, capacity_rps=1000.0, idle_latency_ms=4.0)
        base = model.mean_latency_ms(600.0)
        corrected = model.mean_latency_ms(600.0, scv_correction=2.0)
        assert corrected > base
        # Idle latency is variability-independent; only the wait doubled.
        assert corrected - model.idle_latency_ms == pytest.approx(
            2.0 * (base - model.idle_latency_ms)
        )
        # Factor 1.0 is bit-identical, not merely close.
        assert model.mean_latency_ms(600.0, scv_correction=1.0) == base

    def test_vectorized_fluid_applies_dip_corrections(self):
        vm = custom_vm_type("t-4c", vcpus=4, capacity_rps=1000.0)
        dips = {
            f"d{i}": DipServer(f"d{i}", vm, jitter_fraction=0.0)
            for i in range(3)
        }
        rates = np.array([600.0, 600.0, 600.0])
        base = vector_mean_latency_ms(pool_arrays(dips), rates)
        for dip in dips.values():
            dip.scv_correction = 3.0
        corrected = vector_mean_latency_ms(pool_arrays(dips), rates)
        assert (corrected > base).all()


class TestDivergenceGuard:
    def test_fires_on_bursty_fluid_run(self):
        result = execute(_spec("fluid", **BURSTY))
        warning = result.provenance.model_divergence
        assert warning is not None
        assert "mmpp" in warning and "pareto" in warning
        assert "request-level results are authoritative" in warning

    def test_silent_on_poisson_baseline(self):
        assert execute(_spec("fluid")).provenance.model_divergence is None
        assert execute(_spec("request")).provenance.model_divergence is None

    def test_round_trips_through_result_artifact(self):
        result = execute(_spec("fluid", **BURSTY))
        clone = RunResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert (
            clone.provenance.model_divergence
            == result.provenance.model_divergence
        )

    def test_correction_shifts_the_fluid_mean(self):
        calm = execute(_spec("fluid")).metrics["mean_latency_ms"]
        bursty = execute(_spec("fluid", **BURSTY)).metrics["mean_latency_ms"]
        assert bursty > calm

    def test_tolerance_is_tunable(self):
        spec = _spec("fluid", **BURSTY, divergence_tolerance=1e9)
        assert execute(spec).provenance.model_divergence is None


# -- the planner screens ------------------------------------------------------


class TestPlannerScreens:
    def test_non_poisson_downgrades_with_reason(self):
        from repro.parallel.planner import plan_shards

        plan = plan_shards(
            _spec("request", arrival=ArrivalSpec(kind="mmpp")), shards=4
        )
        assert plan.mode == "serial"
        assert "Poisson" in plan.fallback_reason

    def test_non_exponential_downgrades_with_reason(self):
        from repro.parallel.planner import plan_shards

        plan = plan_shards(
            _spec("request", service=ServiceSpec(kind="pareto")), shards=4
        )
        assert plan.mode == "serial"
        assert "exponential" in plan.fallback_reason

    def test_poisson_exponential_still_shards(self):
        from repro.parallel.planner import plan_shards

        spec = _spec("request")
        object.__setattr__(spec.policy, "name", spec.policy.name)  # no-op
        plan = plan_shards(spec, shards=2)
        assert plan.mode in ("exact", "epoch")

    def test_downgraded_run_matches_serial_bitwise(self):
        spec = _spec("request", num_requests=4000, **BURSTY)
        serial = execute(spec)
        sharded = execute(spec, shards=4)
        assert sharded.metrics == serial.metrics
        assert sharded.provenance.fallback_reason is not None


# -- timeline composition -----------------------------------------------------


class TestArrivalScaleOnBursty:
    def test_arrival_scale_event_rescales_mmpp_request_run(self):
        def run(events=()):
            return execute(
                ExperimentSpec(
                    name="scale-test",
                    runner="request",
                    pool=PoolSpec(kind="uniform", num_dips=4),
                    workload=WorkloadSpec(
                        load_fraction=0.4, arrival=ArrivalSpec(kind="mmpp")
                    ),
                    timeline=TimelineSpec(
                        events=events, window_s=5.0, horizon_s=30.0
                    ),
                    seed=11,
                )
            )

        surged = run(
            (EventSpec(time_s=10.0, kind="arrival_scale", value=2.0),)
        )
        flat = run()
        assert (
            surged.metrics["requests_submitted"]
            > 1.3 * flat.metrics["requests_submitted"]
        )


# -- scenarios and CLI --------------------------------------------------------


class TestScenariosAndCli:
    def test_robustness_envelope_smoke(self):
        from repro.experiments.scenarios import run_scenario

        result = run_scenario("robustness_envelope", num_requests=300)
        assert result.metrics["policies"] >= 9
        assert result.metrics["grid_cells"] == result.metrics["policies"] * 6
        assert result.metrics["worst_p99_degradation"] >= 1.0
        assert "table" in result.detail

    def test_chaos_under_burst_smoke(self):
        from repro.experiments.scenarios import run_scenario

        result = run_scenario("chaos_under_burst", horizon_s=30.0)
        assert result.metrics["bursty_p99_latency_ms"] > 0
        assert result.metrics["p99_ratio"] > 0
        assert result.windows

    def test_cli_list_names_workload_kinds(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "mmpp" in out
        assert "flash_crowd" in out
        assert "pareto" in out
        assert "workload.arrival.kind" in out

    def test_cli_validate_reports_dotted_path(self, capsys, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(
            json.dumps(
                {
                    "name": "bad",
                    "workload": {"arrival": {"kind": "mmpp", "burst_height": 1}},
                }
            )
        )
        code = cli_main(["validate", str(path)])
        err = capsys.readouterr().err
        assert code != 0
        assert "workload.arrival.burst_" in err

    def test_cli_run_stamps_divergence_into_artifact(self, capsys, tmp_path):
        out_file = tmp_path / "run.json"
        code = cli_main(
            [
                "run",
                "fluid_uniform_pool",
                "--set",
                "workload.arrival.kind=mmpp",
                "--set",
                "workload.service.kind=pareto",
                "--set",
                "controller.enabled=false",
                "-o",
                str(out_file),
            ]
        )
        assert code == 0
        artifact = json.loads(out_file.read_text())
        assert artifact["provenance"]["model_divergence"]

"""Every example under examples/ must execute end to end.

The examples are the library's shop window and they all go through the
declarative :mod:`repro.api` now — running them here keeps them from
rotting as the API evolves.  ``REPRO_EXAMPLE_FAST=1`` shrinks the request
budgets so the whole set stays test-suite friendly.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
EXAMPLES_DIR = REPO_ROOT / "examples"

EXAMPLES = sorted(path.name for path in EXAMPLES_DIR.glob("*.py"))


def test_every_example_is_covered():
    """New examples must be picked up by the smoke runs below."""
    assert EXAMPLES, "examples/ directory is empty?"


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script: str, tmp_path: Path):
    env = dict(os.environ)
    env["REPRO_EXAMPLE_FAST"] = "1"
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        cwd=tmp_path,  # artifacts the example writes land in tmp
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, (
        f"{script} failed\nstdout:\n{completed.stdout}\nstderr:\n{completed.stderr}"
    )
    assert completed.stdout.strip(), f"{script} printed nothing"

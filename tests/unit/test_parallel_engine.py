"""The multi-core execution layer: planner, kernel, epoch engine, pool.

Covers the sharding contract end to end:

* the planner's three-way verdict — which policies shard exactly, which
  shard approximately under the epoch engine, and the reason attached to
  every serial fallback;
* statistical equivalence of exactly-sharded and serial runs (same
  M/M/c/K system, different but equally-valid random realizations);
* the epoch engine's contract — bit-identical repeats for every
  epoch-shardable policy (MUX pools and timelines included), shard-count
  and process-vs-inline invariance, and ``sync_interval_s → 0``
  convergence of lc/wlc to the serial engine;
* determinism — merged metrics are bit-identical across repeats for a
  fixed seed and shard count (and, stronger, independent of the shard
  count and of in-process vs worker-process execution);
* the persistent WorkerPool behind sweeps, the single-spec inline rule,
  and the solver warm-start cache shared across fleet control rounds.
"""

from __future__ import annotations

import logging

import numpy as np
import pytest

from repro.api.result import Provenance, RunResult
from repro.api.runners import execute
from repro.api.spec import (
    ControllerSpec,
    EventSpec,
    ExperimentSpec,
    PolicySpec,
    PoolSpec,
    TimelineSpec,
    WorkloadSpec,
)
from repro.api.sweep import Sweep
from repro.exceptions import ConfigurationError
from repro.lb import LeastConnection, MuxPool, policy_seed_kwargs
from repro.parallel import (
    ShardPlan,
    WorkerPool,
    plan_shards,
    policy_fallback_reason,
    run_request_epoch,
    run_request_sharded,
    staleness_crosscheck,
)
from repro.parallel.kernel import (
    arrival_seed,
    build_dip_arrival_streams,
    poisson_arrival_times,
    simulate_station,
)
from repro.sim.trace import MetricsCollector
from repro.solver import SolveCache, build_problem, solve
from repro.workloads import split_dip_ids


def request_spec(
    *,
    name: str = "shard-test",
    num_dips: int = 16,
    num_requests: int = 100_000,
    policy: str = "rr",
    num_muxes: int = 1,
    controller: bool = False,
    seed: int = 7,
    **spec_kwargs,
) -> ExperimentSpec:
    return ExperimentSpec(
        name=name,
        runner="request",
        pool=PoolSpec(kind="uniform", num_dips=num_dips),
        workload=WorkloadSpec(
            load_fraction=0.7, num_requests=num_requests, warmup_s=1.0
        ),
        policy=PolicySpec(name=policy, num_muxes=num_muxes),
        controller=ControllerSpec(enabled=controller),
        seed=seed,
        **spec_kwargs,
    )


def summaries_equal(a: dict, b: dict) -> bool:
    """Bitwise dict equality that treats NaN == NaN (zero-traffic DIPs)."""
    if a.keys() != b.keys():
        return False
    for dip in a:
        if a[dip].keys() != b[dip].keys():
            return False
        for key in a[dip]:
            va, vb = a[dip][key], b[dip][key]
            if va != vb and not (va != va and vb != vb):
                return False
    return True


def dip_fail_timeline() -> TimelineSpec:
    return TimelineSpec(
        events=(
            EventSpec(time_s=2.0, kind="dip_fail", dip="DIP-1"),
            EventSpec(time_s=5.0, kind="dip_recover", dip="DIP-1"),
        ),
        window_s=1.0,
        horizon_s=8.0,
    )


class TestPlanner:
    def test_round_robin_plan_partitions_the_pool(self):
        plan = plan_shards(request_spec(num_dips=16), shards=4)
        assert plan.shardable and plan.fallback_reason is None
        assert plan.shards == 4
        assert plan.routing == "cyclic"
        assert [len(s) for s in plan.dip_slices] == [4, 4, 4, 4]
        flat = [d for s in plan.dip_slices for d in s]
        assert len(set(flat)) == plan.num_dips == 16

    def test_weighted_random_uses_iid_thinning(self):
        plan = plan_shards(request_spec(policy="wrandom"), shards=2)
        assert plan.shardable and plan.routing == "iid-weighted"

    def test_shards_clamped_to_pool_size(self, caplog):
        with caplog.at_level(logging.INFO, logger="repro.parallel"):
            plan = plan_shards(request_spec(num_dips=6), shards=64)
        assert plan.shards == 6
        assert [len(s) for s in plan.dip_slices] == [1] * 6
        assert any("clamping" in record.message for record in caplog.records)

    def test_least_connection_plans_epoch_mode(self):
        plan = plan_shards(request_spec(policy="lc"), shards=4)
        assert plan.shardable and plan.mode == "epoch"
        assert plan.fallback_reason is None
        assert plan.sync_interval_s == pytest.approx(0.25)  # spec default

    def test_mux_pool_cannot_shard_exactly(self):
        mux = MuxPool(lambda: LeastConnection(["d1", "d2"]), num_muxes=2)
        reason = policy_fallback_reason(mux)
        assert reason is not None and "MuxPool" in reason
        # ... but a MUX-fronted spec still plans epoch mode.
        plan = plan_shards(request_spec(policy="lc", num_muxes=2), shards=4)
        assert plan.mode == "epoch"

    @pytest.mark.parametrize(
        "policy, fragment",
        [
            ("wlc", "connection counts"),
            ("p2", "connection counts"),
            ("hash", "flow 5-tuple"),
            ("dns", "flow 5-tuple"),
            ("wrr", "deterministic sequence"),
        ],
    )
    def test_stateful_policies_cannot_shard_exactly(self, policy, fragment):
        reason = policy_fallback_reason(policy)
        assert reason is not None
        if fragment == "deterministic sequence":
            assert "deterministic" in reason
        else:
            assert fragment in reason
        # The exact-shard screen no longer means serial execution:
        plan = plan_shards(request_spec(policy=policy), shards=4)
        assert plan.mode == "epoch"

    def test_timeline_specs_plan_epoch_mode(self):
        spec = request_spec(
            timeline=TimelineSpec(events=(), horizon_s=10.0)
        )
        plan = plan_shards(spec, shards=4)
        assert plan.shardable and plan.mode == "epoch"

    def test_fleet_only_timeline_events_fall_back(self):
        spec = request_spec(
            timeline=TimelineSpec(
                events=(
                    EventSpec(
                        time_s=1.0,
                        kind="arrival_scale",
                        vip="VIP-1",
                        value=2.0,
                    ),
                ),
                horizon_s=10.0,
            )
        )
        plan = plan_shards(spec, shards=4)
        assert plan.mode == "serial"
        assert "fleet" in plan.fallback_reason

    def test_non_request_runners_fall_back(self):
        spec = ExperimentSpec(name="fluid", runner="fluid")
        plan = plan_shards(spec, shards=4)
        assert not plan.shardable and plan.mode == "serial"
        assert "request" in plan.fallback_reason

    def test_single_shard_is_serial(self):
        plan = plan_shards(request_spec(), shards=1)
        assert not plan.shardable

    def test_split_dip_ids_is_balanced_and_complete(self):
        ids = [f"d{i}" for i in range(10)]
        slices = split_dip_ids(ids, 4)
        assert [len(s) for s in slices] == [3, 3, 2, 2]
        assert [d for s in slices for d in s] == ids
        with pytest.raises(ConfigurationError):
            split_dip_ids(ids, 0)


class TestKernel:
    def test_poisson_times_cover_the_horizon(self):
        rng = np.random.default_rng(3)
        times = poisson_arrival_times(rng, 1000.0, 5.0)
        assert times[0] > 0 and times[-1] < 5.0
        assert np.all(np.diff(times) > 0)
        # Count is Poisson(5000): 6 sigma on either side.
        assert 4575 < times.size < 5425

    def test_streams_partition_the_global_stream(self):
        streams = build_dip_arrival_streams(
            seed=1, rate_rps=2000.0, horizon_s=4.0, num_dips=8, routing="cyclic"
        )
        counts = [streams[d].size for d in range(8)]
        assert max(counts) - min(counts) <= 1  # cyclic split is exact
        merged = np.sort(np.concatenate([streams[d] for d in range(8)]))
        direct = poisson_arrival_times(
            np.random.default_rng(arrival_seed(1)), 2000.0, 4.0
        )
        assert np.array_equal(merged, direct)

    def test_station_matches_mm1_mean(self):
        # M/M/1 at rho=0.5: mean sojourn = 1 / (mu - lambda) = 2/mu.
        rng = np.random.default_rng(11)
        arrivals = poisson_arrival_times(rng, 100.0, 400.0)
        services = np.random.default_rng(12).standard_exponential(
            arrivals.size
        ) * (1.0 / 200.0)
        outcome = simulate_station(
            arrivals, services, servers=1, queue_capacity=10_000
        )
        mean_s = float(np.nanmean(outcome.latency_ms)) / 1000.0
        assert mean_s == pytest.approx(1.0 / 100.0, rel=0.05)
        assert outcome.submitted == arrivals.size and outcome.dropped == 0

    def test_station_drops_when_queue_full(self):
        arrivals = np.array([0.0, 0.001, 0.002, 0.003])
        services = np.full(4, 10.0)
        outcome = simulate_station(
            arrivals, services, servers=1, queue_capacity=1
        )
        # One in service, one waiting, the rest dropped.
        assert outcome.dropped == 2
        assert np.isnan(outcome.latency_ms[2]) and not outcome.completed[2]
        assert outcome.timestamp[2] == pytest.approx(0.002)

    def test_warmup_requests_shape_queues_but_produce_no_records(self):
        arrivals = np.array([0.0, 0.5, 1.5])
        services = np.full(3, 1.0)
        outcome = simulate_station(
            arrivals, services, servers=1, queue_capacity=16, measure_from=1.0
        )
        assert outcome.submitted == 1  # only the t=1.5 arrival is measured
        # It queued behind both warm-up requests (departures at 1.0, 2.0).
        assert outcome.latency_ms[0] == pytest.approx((2.0 + 1.0 - 1.5) * 1000)


class TestShardedExecution:
    def test_statistical_equivalence_round_robin_1m(self):
        # The tentpole's equivalence bar: the cyclic split is the *same*
        # splitting law the serial engine applies, so at 1M requests the
        # two estimators of the same M/M/c/K system must agree tightly.
        spec = request_spec(num_dips=32, num_requests=1_000_000)
        serial = execute(spec)
        sharded = execute(spec, shards=4, workers=1)
        assert sharded.metrics["mean_latency_ms"] == pytest.approx(
            serial.metrics["mean_latency_ms"], rel=0.02
        )
        assert sharded.metrics["p99_latency_ms"] == pytest.approx(
            serial.metrics["p99_latency_ms"], rel=0.05
        )
        assert sharded.metrics["drop_fraction"] == pytest.approx(
            serial.metrics["drop_fraction"], abs=0.002
        )
        # Per-DIP shares and utilizations line up too.
        for dip, row in sharded.dip_summaries.items():
            assert row["cpu_utilization"] == pytest.approx(
                serial.dip_summaries[dip]["cpu_utilization"], abs=0.05
            )

    def test_statistical_equivalence_weighted_random(self):
        spec = request_spec(
            policy="wrandom", num_dips=16, num_requests=300_000
        )
        serial = execute(spec)
        sharded = execute(spec, shards=4, workers=1)
        assert sharded.metrics["mean_latency_ms"] == pytest.approx(
            serial.metrics["mean_latency_ms"], rel=0.03
        )
        assert sharded.metrics["p99_latency_ms"] == pytest.approx(
            serial.metrics["p99_latency_ms"], rel=0.08
        )

    def test_bit_identical_across_repeats_and_shard_counts(self):
        spec = request_spec(num_dips=8, num_requests=50_000)
        runs = [
            execute(spec, shards=4, workers=1),
            execute(spec, shards=4, workers=1),
            execute(spec, shards=2, workers=1),
        ]
        assert runs[0].metrics == runs[1].metrics  # repeat: bit-identical
        assert runs[0].metrics == runs[2].metrics  # shard-count invariant
        assert runs[0].dip_summaries == runs[1].dip_summaries
        assert runs[0].dip_summaries == runs[2].dip_summaries
        lats = [
            r.detail["collector"].latencies_ms() for r in runs
        ]
        assert np.array_equal(lats[0], lats[1])
        assert np.array_equal(lats[0], lats[2])

    def test_worker_processes_match_inline_bitwise(self):
        spec = request_spec(num_dips=8, num_requests=40_000)
        inline = execute(spec, shards=4, workers=1)
        multi = execute(spec, shards=4, workers=2)
        assert inline.metrics == multi.metrics
        assert inline.dip_summaries == multi.dip_summaries
        assert multi.provenance.shards == 4 and multi.provenance.workers == 2

    def test_controller_weights_drive_the_thinning(self):
        # A squeezed three-DIP pool: KnapsackLB shifts weight away from the
        # weak DIP, and the sharded run must route by those weights.
        spec = ExperimentSpec(
            name="weighted-shard",
            runner="request",
            pool=PoolSpec(kind="three_dip", capacity_ratio=0.5),
            workload=WorkloadSpec(
                load_fraction=0.7, num_requests=60_000, warmup_s=1.0
            ),
            policy=PolicySpec(name="wrandom"),
            controller=ControllerSpec(enabled=True),
            seed=3,
        )
        result = execute(spec, shards=3, workers=1)
        assert result.provenance.shards == 3
        shares = {
            dip: row["requests"] for dip, row in result.dip_summaries.items()
        }
        assert shares["DIP-LC"] < shares["DIP-HC-1"]
        assert shares["DIP-LC"] < shares["DIP-HC-2"]

    def test_fallback_executes_serially_with_reason_in_provenance(self, caplog):
        spec = ExperimentSpec(
            name="fluid-shard",
            runner="fluid",
            controller=ControllerSpec(enabled=False),
        )
        with caplog.at_level(logging.INFO, logger="repro.parallel"):
            result = execute(spec, shards=4)
        assert result.provenance.shards == 1
        assert result.provenance.shard_mode == "serial"
        assert "request" in result.provenance.fallback_reason
        assert any("request" in r.message for r in caplog.records)

    def test_engines_reject_mismatched_plans(self):
        epoch_plan = plan_shards(request_spec(policy="lc"), shards=4)
        with pytest.raises(ConfigurationError, match="not 'exact'"):
            run_request_sharded(request_spec(policy="lc"), epoch_plan)
        exact_plan = plan_shards(request_spec(), shards=4)
        with pytest.raises(ConfigurationError, match="not 'epoch'"):
            run_request_epoch(request_spec(), exact_plan)

    def test_plan_must_cover_the_pool(self):
        spec = request_spec(num_dips=8)
        bogus = ShardPlan(
            shards=2,
            shardable=True,
            routing="cyclic",
            dip_slices=(("DIP-1",), ("DIP-2",)),
        )
        with pytest.raises(ConfigurationError, match="cover"):
            run_request_sharded(spec, bogus, workers=1)


class TestEpochExecution:
    """The epoch-synchronized engine: every stateful policy, MUX pools,
    timelines — bit-identical per (seed, sync_interval_s), invariant to
    shard count and process fan-out, and convergent to serial as the sync
    interval shrinks."""

    @pytest.mark.parametrize("policy", ["wrr", "hash", "dns", "lc", "wlc", "p2"])
    def test_bit_identical_repeats_per_policy(self, policy):
        spec = request_spec(policy=policy, num_dips=8, num_requests=8_000)
        first = execute(spec, shards=4, workers=1)
        second = execute(spec, shards=4, workers=1)
        assert first.provenance.shard_mode == "epoch"
        assert first.metrics == second.metrics
        assert summaries_equal(first.dip_summaries, second.dip_summaries)

    def test_bit_identical_with_mux_pool(self):
        spec = request_spec(
            policy="lc", num_muxes=4, num_dips=8, num_requests=8_000
        )
        first = execute(spec, shards=4, workers=1)
        second = execute(spec, shards=4, workers=1)
        assert first.provenance.shard_mode == "epoch"
        assert first.metrics == second.metrics

    def test_bit_identical_timeline_dip_fail(self):
        spec = request_spec(
            policy="lc", num_dips=8, timeline=dip_fail_timeline()
        )
        first = execute(spec, shards=4, workers=1)
        second = execute(spec, shards=4, workers=1)
        assert first.metrics == second.metrics
        assert first.windows == second.windows
        # Events land in the same windows the serial engine puts them in.
        serial = execute(spec)
        assert [w.events for w in first.windows] == [
            w.events for w in serial.windows
        ]
        assert first.metrics["timeline_events"] == 2.0

    def test_merged_metrics_independent_of_shard_count(self):
        spec = request_spec(policy="wlc", num_dips=8, num_requests=8_000)
        two = execute(spec, shards=2, workers=1)
        four = execute(spec, shards=4, workers=1)
        assert two.metrics == four.metrics
        assert summaries_equal(two.dip_summaries, four.dip_summaries)

    def test_process_mode_matches_inline_bitwise(self):
        spec = request_spec(policy="lc", num_dips=8, num_requests=8_000)
        inline = execute(spec, shards=4, workers=1)
        multi = execute(spec, shards=4, workers=2)
        assert inline.metrics == multi.metrics
        assert summaries_equal(inline.dip_summaries, multi.dip_summaries)
        assert multi.provenance.shard_mode == "epoch"
        assert multi.provenance.shards == 4 and multi.provenance.workers == 2

    @pytest.mark.parametrize("policy", ["lc", "wlc"])
    def test_sync_interval_to_zero_converges_to_serial(self, policy):
        # The staleness property the docs promise: as sync_interval_s → 0
        # the synced view approaches the serial engine's live counts and
        # the error shrinks roughly linearly in the interval (measured:
        # ~15% at 5ms, ~8.5% at 2ms, ~4.6% at 1ms for this workload;
        # seed-to-seed noise is ~0.6%).  Different-but-equally-valid RNG
        # draws keep the limit from being bit-equal.
        spec = request_spec(policy=policy, num_dips=8, num_requests=40_000)
        serial = execute(spec)

        def rel_error(result):
            return abs(
                result.metrics["mean_latency_ms"]
                - serial.metrics["mean_latency_ms"]
            ) / serial.metrics["mean_latency_ms"]

        tight = execute(
            spec.with_overrides({"sync_interval_s": 0.001}),
            shards=4,
            workers=1,
        )
        loose = execute(
            spec.with_overrides({"sync_interval_s": 0.05}), shards=4, workers=1
        )
        assert rel_error(tight) < 0.06
        assert rel_error(tight) < rel_error(loose)

    def test_staleness_crosscheck_reports_deltas(self):
        spec = request_spec(policy="lc", num_dips=8, num_requests=6_000)
        report = staleness_crosscheck(
            spec, shards=4, sync_intervals=(0.05, 0.5), workers=1
        )
        assert set(report) == {"serial", "epoch"}
        assert sorted(report["epoch"]) == [0.05, 0.5]
        for row in report["epoch"].values():
            for key in ("mean_rel", "p50_rel", "p99_rel", "drop_abs"):
                assert np.isfinite(row[key]) and row[key] >= 0.0

    def test_epoch_provenance_records_mode_interval_and_clamp(self):
        spec = request_spec(
            policy="lc", num_dips=4, num_requests=4_000, sync_interval_s=0.1
        )
        result = execute(spec, shards=8, workers=1)  # clamped to 4 DIPs
        assert result.provenance.shard_mode == "epoch"
        assert result.provenance.shards == 4
        assert result.provenance.sync_interval_s == pytest.approx(0.1)
        assert result.provenance.fallback_reason is None


class TestPolicySeedKwargs:
    def test_seeded_policies_get_the_seed(self):
        assert policy_seed_kwargs("p2", seed=5) == {"seed": 5}
        assert policy_seed_kwargs("dns", seed=1) == {"seed": 1}
        assert policy_seed_kwargs("random", seed=0) == {"seed": 0}
        assert policy_seed_kwargs("wrandom", seed=9) == {"seed": 9}

    def test_unseeded_policies_get_nothing(self):
        for name in ("rr", "wrr", "lc", "wlc", "hash"):
            assert policy_seed_kwargs(name, seed=3) == {}

    def test_unknown_policy_raises(self):
        with pytest.raises(ConfigurationError, match="unknown policy"):
            policy_seed_kwargs("nope")


class TestColumnarMerge:
    def test_extend_columns_interns_and_appends(self):
        collector = MetricsCollector()
        collector.extend_columns(
            "d1",
            np.array([1.0, 2.0]),
            np.array([True, True]),
            np.array([0.1, 0.2]),
        )
        collector.record_request("d2", 3.0, True, 0.3)
        collector.extend_columns(
            "d1",
            np.array([4.0, float("nan")]),
            np.array([True, False]),
            np.array([0.4, 0.5]),
        )
        assert collector.total_requests == 5
        assert collector.mean_latency_ms() == pytest.approx((1 + 2 + 3 + 4) / 4)
        share = collector.request_share()
        assert share["d1"] == pytest.approx(0.8)
        assert collector.drop_fraction() == pytest.approx(0.2)
        # Empty columns still intern the DIP for share/summaries.
        collector.extend_columns(
            "d3", np.array([]), np.array([], dtype=bool), np.array([])
        )
        assert "d3" in collector.summaries()

    def test_extend_columns_rejects_ragged_input(self):
        collector = MetricsCollector()
        with pytest.raises(ConfigurationError, match="equal-length"):
            collector.extend_columns(
                "d1", np.array([1.0]), np.array([True, False]), np.array([0.0])
            )

    def test_window_rows_fold_deterministically_on_merged_columns(self):
        def build() -> MetricsCollector:
            collector = MetricsCollector()
            rng = np.random.default_rng(5)
            for dip in ("d1", "d2", "d3"):
                n = 500
                ts = np.sort(rng.uniform(0, 10, size=n))
                collector.extend_columns(
                    dip, rng.exponential(5.0, size=n), np.ones(n, bool), ts
                )
            return collector

        rows_a = build().window_rows(window_s=2.0, start_s=0.0, end_s=10.0)
        rows_b = build().window_rows(window_s=2.0, start_s=0.0, end_s=10.0)
        assert rows_a == rows_b
        assert len(rows_a) == 5
        assert sum(r["metrics"]["requests"] for r in rows_a) == 1500


class TestShmCleanup:
    def test_failed_merge_unlinks_unconsumed_segments(self):
        from multiprocessing import shared_memory

        from repro.parallel.shard import merge_shard_outcomes

        segment = shared_memory.SharedMemory(create=True, size=17)
        name = segment.name
        np.ndarray((1,), dtype=np.float64, buffer=segment.buf)[0] = 1.0
        segment.close()
        broken = {
            "blocks": [
                {
                    "dip": "d1",
                    "count": 2,  # ragged: only one latency supplied
                    "latency_ms": np.array([1.0]),
                    "completed": np.array([True, True]),
                    "timestamp": np.array([0.1, 0.2]),
                    "submitted": 2,
                    "dropped": 0,
                    "busy_seconds": 0.0,
                    "servers": 1,
                }
            ]
        }
        healthy = {
            "shm": name,
            "total": 1,
            "blocks": [
                {
                    "dip": "d2",
                    "count": 1,
                    "offset": 0,
                    "submitted": 1,
                    "dropped": 0,
                    "busy_seconds": 0.0,
                    "servers": 1,
                }
            ],
        }
        with pytest.raises(ConfigurationError):
            merge_shard_outcomes([broken, healthy])
        # The never-merged segment must not linger in /dev/shm.
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)


class TestWorkerPool:
    def fluid_sweep(self) -> Sweep:
        base = ExperimentSpec(
            name="pool-sweep",
            runner="fluid",
            controller=ControllerSpec(enabled=False),
        )
        return Sweep.from_axes(
            base, {"workload.load_fraction": [0.4, 0.6, 0.8]}
        )

    def test_parallel_sweep_matches_serial(self):
        sweep = self.fluid_sweep()
        serial = sweep.run()
        with WorkerPool(max_workers=2) as pool:
            parallel = sweep.run(pool=pool)
        assert len(serial) == len(parallel) == 3
        for ours, theirs in zip(serial, parallel):
            assert ours.spec.name == theirs.spec.name
            assert ours.metrics_equal(theirs)

    def test_pool_is_reused_across_sweeps(self):
        sweep = self.fluid_sweep()
        with WorkerPool(max_workers=2) as pool:
            sweep.run(pool=pool)
            executor = pool._executor
            sweep.run(pool=pool)
            assert pool._executor is executor  # warm, not re-created
            assert pool.tasks_dispatched == 6

    def test_single_spec_sweep_never_forks(self, monkeypatch):
        import repro.parallel.pool as pool_module

        def boom(*args, **kwargs):  # pragma: no cover - must not be called
            raise AssertionError("a single-spec sweep must run inline")

        monkeypatch.setattr(pool_module, "WorkerPool", boom)
        base = ExperimentSpec(
            name="solo", runner="fluid", controller=ControllerSpec(enabled=False)
        )
        sweep = Sweep.from_axes(base, {"workload.load_fraction": [0.5]})
        results = sweep.run(max_workers=8)
        assert len(results) == 1
        assert results[0].metrics["mean_latency_ms"] > 0

    def test_single_worker_pool_runs_inline(self):
        pool = WorkerPool(max_workers=1)
        assert pool.map(len, [[1, 2], [3]]) == [2, 1]
        assert not pool.started
        with pytest.raises(ConfigurationError):
            WorkerPool(max_workers=0)


class TestSolveCache:
    def problem(self, bump: float = 0.0):
        return build_problem(
            {
                "d1": {0.2: 5.0 + bump, 0.5: 8.0, 0.8: 12.0},
                "d2": {0.2: 4.0, 0.5: 7.0, 0.8: 13.0},
            },
            total_weight=1.0,
            total_weight_tolerance=0.11,
        )

    def test_identical_problems_hit(self):
        cache = SolveCache()
        first = solve(self.problem(), backend="dp", cache=cache)
        second = solve(self.problem(), backend="dp", cache=cache)
        assert (cache.hits, cache.misses) == (1, 1)
        assert second.weights == first.weights
        assert second.solve_time_s == 0.0  # re-stamped: the solve was free

    def test_changed_problems_and_backends_miss(self):
        cache = SolveCache()
        solve(self.problem(), backend="dp", cache=cache)
        solve(self.problem(bump=1.0), backend="dp", cache=cache)
        solve(self.problem(), backend="branch_and_bound", cache=cache)
        assert cache.hits == 0 and cache.misses == 3

    def test_lru_bound(self):
        cache = SolveCache(maxsize=1)
        solve(self.problem(), backend="dp", cache=cache)
        solve(self.problem(bump=1.0), backend="dp", cache=cache)
        solve(self.problem(), backend="dp", cache=cache)  # evicted: miss
        assert cache.hits == 0 and len(cache) == 1

    def test_fleet_controller_shares_one_cache_across_vips(self):
        from repro.core import FleetController
        from repro.workloads import build_shared_dip_fleet

        fleet = build_shared_dip_fleet(num_vips=2, num_dips=6, seed=5)
        plane = FleetController(fleet)
        for vip in fleet.vips:
            plane.onboard_vip(vip)
        plane.converge_all(settle_steps=1)
        assert {
            c.solve_cache for c in plane.controllers.values()
        } == {plane.solve_cache}
        hits_before = plane.solve_cache.hits
        # Unchanged curves -> identical problems -> every re-solve is free.
        for controller in plane.controllers.values():
            controller.compute_weights()
        assert plane.solve_cache.hits >= hits_before + len(plane.controllers)


class TestCli:
    def test_run_shards_flag_round_trips_through_artifact(self, capsys, tmp_path):
        import json

        from repro.api.cli import main

        spec_file = tmp_path / "spec.json"
        spec_file.write_text(request_spec(num_requests=20_000).to_json())
        out_file = tmp_path / "result.json"
        code = main(
            [
                "run",
                str(spec_file),
                "--shards",
                "4",
                "--workers",
                "1",
                "-o",
                str(out_file),
            ]
        )
        capsys.readouterr()
        assert code == 0
        loaded = RunResult.load(out_file)
        assert loaded.provenance.shards == 4
        assert loaded.provenance.workers == 1
        assert loaded.metrics["requests_submitted"] > 0
        # And the artifact JSON carries the execution shape explicitly.
        raw = json.loads(out_file.read_text())
        assert raw["provenance"]["shards"] == 4

    def test_sync_interval_flag_round_trips_through_artifact(
        self, capsys, tmp_path
    ):
        from repro.api.cli import main

        spec_file = tmp_path / "spec.json"
        spec_file.write_text(
            request_spec(policy="lc", num_dips=4, num_requests=4_000).to_json()
        )
        out_file = tmp_path / "result.json"
        code = main(
            [
                "run",
                str(spec_file),
                "--shards",
                "2",
                "--workers",
                "1",
                "--sync-interval",
                "0.1",
                "-o",
                str(out_file),
            ]
        )
        err = capsys.readouterr().err
        assert code == 0
        assert "epoch-sharded run" in err
        assert "sync_interval_s=0.1" in err
        loaded = RunResult.load(out_file)
        assert loaded.provenance.shard_mode == "epoch"
        assert loaded.provenance.sync_interval_s == pytest.approx(0.1)

    def test_fallback_note_names_the_reason(self, capsys):
        from repro.api.cli import main

        code = main(
            [
                "run",
                "fluid_uniform_pool",
                "--set",
                "controller.enabled=false",
                "--shards",
                "4",
            ]
        )
        err = capsys.readouterr().err
        assert code == 0
        assert "serial fallback" in err

    def test_sweep_accepts_workers_alias(self, capsys):
        from repro.api.cli import main

        code = main(
            [
                "sweep",
                "fluid_uniform_pool",
                "--set",
                "controller.enabled=false",
                "--axis",
                "workload.load_fraction=0.4,0.6",
                "--workers",
                "1",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "load_fraction=0.4" in out


class TestProvenance:
    def test_shards_and_workers_round_trip(self):
        spec = request_spec(num_requests=1_000, num_dips=2)
        result = RunResult(
            spec=spec,
            runner="request",
            seed=7,
            metrics={"mean_latency_ms": 1.0},
            dip_summaries={},
            provenance=Provenance(
                started_at="now", wall_clock_s=0.1, shards=4, workers=2
            ),
        )
        loaded = RunResult.from_dict(result.to_dict())
        assert loaded.provenance.shards == 4
        assert loaded.provenance.workers == 2

    def test_epoch_fields_round_trip(self):
        spec = request_spec(num_requests=1_000, num_dips=2)
        result = RunResult(
            spec=spec,
            runner="request",
            seed=7,
            metrics={},
            dip_summaries={},
            provenance=Provenance(
                started_at="now",
                wall_clock_s=0.1,
                shards=4,
                workers=2,
                shard_mode="epoch",
                sync_interval_s=0.25,
                fallback_reason=None,
            ),
        )
        loaded = RunResult.from_dict(result.to_dict())
        assert loaded.provenance.shard_mode == "epoch"
        assert loaded.provenance.sync_interval_s == pytest.approx(0.25)
        assert loaded.provenance.fallback_reason is None

    def test_fallback_reason_round_trips(self):
        spec = request_spec(num_requests=1_000, num_dips=2)
        result = RunResult(
            spec=spec,
            runner="request",
            seed=7,
            metrics={},
            dip_summaries={},
            provenance=Provenance(
                started_at="now",
                wall_clock_s=0.1,
                fallback_reason="runner 'fluid' is not request-level",
            ),
        )
        loaded = RunResult.from_dict(result.to_dict())
        assert "fluid" in loaded.provenance.fallback_reason

    def test_old_artifacts_default_to_serial(self):
        spec = request_spec(num_requests=1_000, num_dips=2)
        data = RunResult(
            spec=spec,
            runner="request",
            seed=7,
            metrics={},
            dip_summaries={},
            provenance=Provenance(started_at="now", wall_clock_s=0.1),
        ).to_dict()
        del data["provenance"]["shards"], data["provenance"]["workers"]
        del data["provenance"]["shard_mode"]
        del data["provenance"]["sync_interval_s"]
        del data["provenance"]["fallback_reason"]
        loaded = RunResult.from_dict(data)
        assert loaded.provenance.shards == 1
        assert loaded.provenance.workers == 1
        assert loaded.provenance.shard_mode == "serial"
        assert loaded.provenance.sync_interval_s is None
        assert loaded.provenance.fallback_reason is None

"""The gym-style environment: determinism, substrate fidelity, actions.

The two load-bearing guarantees:

* same :class:`EnvSpec` + reset seed → bit-identical observation/reward
  trajectories on both substrates;
* a no-op episode (agent never overrides weights) produces exactly the
  windows the batch runner produces for the same spec — the env is a
  faithful re-stepping of the timed run, not an approximation of it.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.api.runners import execute
from repro.exceptions import ConfigurationError
from repro.learn import (
    ENV_SCENARIOS,
    EnvSpec,
    LoadBalanceEnv,
    env_scenario_registry,
    episode_spec,
)


def fluid_env(**overrides) -> EnvSpec:
    base = dict(
        scenario="dip_outage_recovery",
        substrate="fluid",
        num_dips=4,
        load_fraction=0.5,
    )
    base.update(overrides)
    return EnvSpec(**base)


def request_env(**overrides) -> EnvSpec:
    base = dict(
        scenario="dip_outage_recovery",
        substrate="request",
        num_dips=3,
        load_fraction=0.5,
        capacity_rps=60.0,
    )
    base.update(overrides)
    return EnvSpec(**base)


def rollout(env: LoadBalanceEnv, seed: int, actions=None):
    """Run one full episode; returns (observations, rewards, windows)."""
    obs = [env.reset(seed=seed)]
    rewards = []
    for step in range(env.num_steps):
        action = None if actions is None else actions[step % len(actions)]
        observation, reward, done, _ = env.step(action)
        obs.append(observation)
        rewards.append(reward)
    assert done
    return obs, rewards, env.windows


class TestEnvShape:
    def test_outage_shape_derives_steps_and_sizes(self):
        env = LoadBalanceEnv(fluid_env())
        assert env.num_dips == 4
        assert env.window_s == 5.0
        assert env.num_steps == int(env.horizon_s / env.window_s)
        assert env.observation_size == 3 * 4 + 1
        assert env.num_actions == 1 + 2 * 4

    def test_registry_names_the_builtin_shapes(self):
        names = set(env_scenario_registry())
        assert names == {
            "dip_outage_recovery",
            "diurnal_surge",
            "antagonist_phases",
        }
        assert names == set(ENV_SCENARIOS)

    def test_episode_spec_forces_learner_ownership(self):
        spec = episode_spec(fluid_env(), seed=123)
        assert spec.runner == "fluid"
        assert spec.controller.enabled is False
        assert spec.seed == 123
        assert spec.pool.num_dips == 4
        assert spec.workload.load_fraction == 0.5


class TestDeterminism:
    def test_fluid_trajectories_bit_identical(self):
        actions = [None, [1.0, 2.0, 1.0, 1.0], None, [3.0, 1.0, 1.0, 1.0]]
        obs_a, rew_a, win_a = rollout(LoadBalanceEnv(fluid_env()), 7, actions)
        obs_b, rew_b, win_b = rollout(LoadBalanceEnv(fluid_env()), 7, actions)
        for a, b in zip(obs_a, obs_b):
            assert np.array_equal(a, b)
        assert rew_a == rew_b
        assert [w.to_dict() for w in win_a] == [w.to_dict() for w in win_b]

    def test_request_trajectories_bit_identical(self):
        actions = [None, [2.0, 1.0, 1.0], None]
        obs_a, rew_a, win_a = rollout(
            LoadBalanceEnv(request_env()), 13, actions
        )
        obs_b, rew_b, win_b = rollout(
            LoadBalanceEnv(request_env()), 13, actions
        )
        for a, b in zip(obs_a, obs_b):
            assert np.array_equal(a, b)
        assert rew_a == rew_b
        assert [w.to_dict() for w in win_a] == [w.to_dict() for w in win_b]

    def test_different_seeds_diverge_on_request_substrate(self):
        _, rew_a, _ = rollout(LoadBalanceEnv(request_env()), 1)
        _, rew_b, _ = rollout(LoadBalanceEnv(request_env()), 2)
        assert rew_a != rew_b


class TestSubstrateFidelity:
    """A no-op episode replays the batch runner's windows exactly."""

    def test_fluid_noop_matches_batch_runner(self):
        env = LoadBalanceEnv(fluid_env())
        _, _, windows = rollout(env, 42)
        batch = execute(episode_spec(env.spec, 42))
        assert [w.to_dict() for w in windows] == [
            w.to_dict() for w in batch.windows
        ]

    def test_request_noop_matches_batch_runner(self):
        env = LoadBalanceEnv(request_env())
        _, _, windows = rollout(env, 42)
        batch = execute(episode_spec(env.spec, 42))
        assert [w.to_dict() for w in windows] == [
            w.to_dict() for w in batch.windows
        ]


class TestActions:
    def test_weight_action_shifts_fluid_share(self):
        env = LoadBalanceEnv(fluid_env())
        env.reset(seed=3)
        _, _, _, info = env.step([10.0, 1.0, 1.0, 1.0])
        shares = info["window"].dip_share
        assert shares[env.dips[0]] > 0.5  # 10/13 of the traffic

    def test_weight_action_is_normalized_in_info(self):
        env = LoadBalanceEnv(fluid_env())
        env.reset(seed=3)
        _, _, _, info = env.step([2.0, 2.0, 2.0, 2.0])
        assert all(abs(w - 0.25) < 1e-12 for w in info["weights"].values())

    def test_ops_mode_boost_and_noop(self):
        env = LoadBalanceEnv(fluid_env(action_mode="ops"))
        env.reset(seed=3)
        _, _, _, info = env.step(0)  # no-op keeps the uniform split
        assert all(abs(w - 0.25) < 1e-12 for w in info["weights"].values())
        _, _, _, info = env.step(1)  # boost the first DIP by (1 + op_step)
        weights = info["weights"]
        assert weights[env.dips[0]] > weights[env.dips[1]]
        assert abs(sum(weights.values()) - 1.0) < 1e-12

    def test_ops_mode_shed_reduces_the_target(self):
        env = LoadBalanceEnv(fluid_env(action_mode="ops"))
        env.reset(seed=3)
        _, _, _, info = env.step(2)  # shed the first DIP by 1/(1 + op_step)
        assert info["weights"][env.dips[0]] < info["weights"][env.dips[1]]

    @pytest.mark.parametrize(
        "action, message",
        [
            ([1.0, 2.0], "length 4"),
            ([1.0, -1.0, 1.0, 1.0], "finite and >= 0"),
            ([0.0, 0.0, 0.0, 0.0], "positive entry"),
            ([float("nan"), 1.0, 1.0, 1.0], "finite and >= 0"),
        ],
    )
    def test_bad_weight_actions_rejected(self, action, message):
        env = LoadBalanceEnv(fluid_env())
        env.reset(seed=0)
        with pytest.raises(ConfigurationError, match=message):
            env.step(action)

    def test_ops_action_out_of_range_rejected(self):
        env = LoadBalanceEnv(fluid_env(action_mode="ops"))
        env.reset(seed=0)
        with pytest.raises(ConfigurationError, match="ops action"):
            env.step(env.num_actions)

    def test_step_before_reset_rejected(self):
        env = LoadBalanceEnv(fluid_env())
        with pytest.raises(ConfigurationError, match="reset"):
            env.step(None)

    def test_step_past_done_rejected(self):
        env = LoadBalanceEnv(fluid_env())
        rollout(env, 0)
        with pytest.raises(ConfigurationError, match="episode is over"):
            env.step(None)


class TestEnvSpecValidation:
    @pytest.mark.parametrize(
        "kwargs, message",
        [
            ({"substrate": "fleet"}, "substrate must be one of"),
            ({"action_mode": "boxes"}, "action_mode must be one of"),
            ({"op_step": 0.0}, "op_step"),
            ({"latency_scale_ms": -1.0}, "latency_scale_ms"),
            ({"drop_penalty_ms": -1.0}, "drop_penalty_ms"),
            ({"num_dips": 1}, "num_dips"),
            ({"load_fraction": 1.5}, "load_fraction"),
            ({"capacity_rps": 0.0}, "capacity_rps"),
        ],
    )
    def test_field_rules(self, kwargs, message):
        with pytest.raises(ConfigurationError, match=message):
            EnvSpec(**kwargs)

    def test_scenario_bridge_rejected_with_builtin_names(self):
        with pytest.raises(ConfigurationError, match="scenario bridge"):
            episode_spec(EnvSpec(scenario="multi_vip_shared_dips"), seed=0)

    def test_timeline_less_spec_rejected(self):
        with pytest.raises(ConfigurationError, match="no timeline"):
            episode_spec(EnvSpec(scenario="testbed_klb"), seed=0)

    def test_unweighted_policy_rejected_on_request_substrate(self, tmp_path):
        path = tmp_path / "lc_timed.json"
        path.write_text(
            json.dumps(
                {
                    "name": "lc-timed",
                    "policy": {"name": "lc"},
                    "timeline": {
                        "events": [
                            {"time_s": 5.0, "kind": "dip_fail", "dip": "DIP-1"}
                        ],
                        "window_s": 5.0,
                        "horizon_s": 15.0,
                    },
                }
            )
        )
        env = EnvSpec(scenario=str(path), substrate="request")
        with pytest.raises(ConfigurationError, match="weighted policy"):
            episode_spec(env, seed=0)

    def test_unknown_scenario_uses_registry_error(self):
        with pytest.raises(ConfigurationError, match="no-such-shape"):
            episode_spec(EnvSpec(scenario="no-such-shape"), seed=0)

"""Unit tests for the simulation substrate (engine, queueing, fluid, cluster)."""

from __future__ import annotations

import pytest

from repro.backends import DipServer, custom_vm_type
from repro.exceptions import ConfigurationError, SimulationError
from repro.lb import LeastConnection, RoundRobin, WeightedRoundRobin
from repro.sim import (
    EventScheduler,
    FluidCluster,
    MetricsCollector,
    RequestCluster,
    Vip,
    WorkloadGenerator,
    equal_split,
    fraction_of_requests_improved,
    least_connection_split,
    max_latency_gain,
    power_of_two_split,
    split_for_policy,
    weighted_split,
)
from repro.sim.client import ClientPool


def make_dips(capacities, seed=0, cores=1):
    dips = {}
    for index, capacity in enumerate(capacities):
        vm = custom_vm_type(f"vm{index}", vcpus=cores, capacity_rps=capacity)
        dips[f"d{index}"] = DipServer(f"d{index}", vm, seed=seed + index, jitter_fraction=0.0)
    return dips


class TestEventScheduler:
    def test_events_run_in_time_order(self):
        scheduler = EventScheduler()
        order = []
        scheduler.schedule(2.0, lambda: order.append("b"))
        scheduler.schedule(1.0, lambda: order.append("a"))
        scheduler.run_until(5.0)
        assert order == ["a", "b"]

    def test_ties_run_in_insertion_order(self):
        scheduler = EventScheduler()
        order = []
        scheduler.schedule(1.0, lambda: order.append(1))
        scheduler.schedule(1.0, lambda: order.append(2))
        scheduler.run_until(2.0)
        assert order == [1, 2]

    def test_run_until_stops_at_boundary(self):
        scheduler = EventScheduler()
        fired = []
        scheduler.schedule(10.0, lambda: fired.append(True))
        scheduler.run_until(5.0)
        assert not fired
        assert scheduler.now == 5.0

    def test_cancelled_event_not_run(self):
        scheduler = EventScheduler()
        fired = []
        handle = scheduler.schedule_cancellable(1.0, lambda: fired.append(True))
        handle.cancel()
        scheduler.run_until(2.0)
        assert not fired

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            EventScheduler().schedule(-1.0, lambda: None)

    def test_events_can_schedule_events(self):
        scheduler = EventScheduler()
        seen = []

        def first():
            seen.append("first")
            scheduler.schedule(1.0, lambda: seen.append("second"))

        scheduler.schedule(1.0, first)
        scheduler.run_until(5.0)
        assert seen == ["first", "second"]

    def test_run_all_guards_against_runaway(self):
        scheduler = EventScheduler()

        def rearm():
            scheduler.schedule(0.001, rearm)

        scheduler.schedule(0.001, rearm)
        with pytest.raises(SimulationError):
            scheduler.run_all(max_events=100)

    def test_processed_counter(self):
        scheduler = EventScheduler()
        scheduler.schedule(0.5, lambda: None)
        scheduler.schedule(0.6, lambda: None)
        scheduler.run_until(1.0)
        assert scheduler.processed_events == 2

    def test_max_events_truncation_keeps_clock_at_last_event(self):
        """Regression: a truncated run must not advance past pending events."""
        scheduler = EventScheduler()
        fired = []
        for delay in (1.0, 2.0, 3.0):
            scheduler.schedule(delay, lambda d=delay: fired.append(d))
        executed = scheduler.run_until(10.0, max_events=2)
        assert executed == 2
        assert fired == [1.0, 2.0]
        assert scheduler.now == 2.0  # not 10.0: an event at t=3 is still due
        # Resuming executes the pending event at its own (future) time.
        executed = scheduler.run_until(10.0)
        assert executed == 1
        assert fired == [1.0, 2.0, 3.0]
        assert scheduler.now == 10.0

    def test_max_events_truncation_without_pending_reaches_end_time(self):
        scheduler = EventScheduler()
        scheduler.schedule(1.0, lambda: None)
        executed = scheduler.run_until(5.0, max_events=1)
        assert executed == 1
        assert scheduler.now == 5.0  # nothing else due before end_time

    def test_max_events_truncation_ignores_cancelled_pending(self):
        scheduler = EventScheduler()
        scheduler.schedule(1.0, lambda: None)
        handle = scheduler.schedule_cancellable(2.0, lambda: None)
        handle.cancel()
        executed = scheduler.run_until(5.0, max_events=1)
        assert executed == 1
        assert scheduler.now == 5.0  # the only pending event was cancelled


class TestWorkloadGenerator:
    def test_interarrival_mean_matches_rate(self):
        generator = WorkloadGenerator(rate_rps=100.0, seed=1)
        samples = [generator.next_interarrival_s() for _ in range(5000)]
        assert sum(samples) / len(samples) == pytest.approx(0.01, rel=0.1)

    def test_flows_have_distinct_ports(self):
        generator = WorkloadGenerator(rate_rps=10.0, seed=1)
        flows = [generator.next_flow() for _ in range(100)]
        assert len({(f.src_ip, f.src_port) for f in flows}) == 100

    def test_clients_limited_to_pool(self):
        generator = WorkloadGenerator(rate_rps=10.0, clients=ClientPool(num_clients=2), seed=1)
        sources = {generator.next_flow().src_ip for _ in range(50)}
        assert len(sources) <= 2

    def test_invalid_rate(self):
        with pytest.raises(ConfigurationError):
            WorkloadGenerator(rate_rps=0.0)


class TestFluidSplits:
    def test_equal_split(self):
        assert equal_split(["a", "b"], 100.0) == {"a": 50.0, "b": 50.0}

    def test_weighted_split(self):
        rates = weighted_split({"a": 0.75, "b": 0.25}, 100.0)
        assert rates["a"] == pytest.approx(75.0)

    def test_weighted_split_zero_weights_falls_back_to_equal(self):
        rates = weighted_split({"a": 0.0, "b": 0.0}, 100.0)
        assert rates["a"] == pytest.approx(50.0)

    def test_least_connection_shifts_traffic_from_slow_dip(self):
        """The fluid LC equilibrium sends less traffic to the slower DIP.

        (The §2.1 under-adaptation of real least-connection — where short
        per-request connections quantise the signal — is reproduced by the
        request-level simulator, not by this idealised fluid equilibrium.)
        """
        dips = make_dips([400.0, 400.0])
        dips["d1"].set_capacity_ratio(0.6)
        rates = least_connection_split(dips, 0.7 * (400 + 240))
        assert rates["d1"] < rates["d0"]
        assert sum(rates.values()) == pytest.approx(0.7 * 640, rel=1e-6)

    def test_least_connection_conserves_traffic(self):
        dips = make_dips([400.0, 800.0, 1200.0])
        rates = least_connection_split(dips, 1000.0)
        assert sum(rates.values()) == pytest.approx(1000.0, rel=1e-6)

    def test_power_of_two_conserves_traffic(self):
        dips = make_dips([400.0, 800.0])
        rates = power_of_two_split(dips, 600.0)
        assert sum(rates.values()) == pytest.approx(600.0, rel=1e-6)

    def test_power_of_two_favours_big_dip(self):
        dips = make_dips([400.0, 1200.0])
        rates = power_of_two_split(dips, 800.0)
        assert rates["d1"] > rates["d0"]

    def test_split_for_policy_dispatch(self):
        dips = make_dips([400.0, 400.0])
        for policy in ("rr", "hash", "random"):
            rates = split_for_policy(policy, dips, 100.0)
            assert rates["d0"] == pytest.approx(50.0)
        rates = split_for_policy("wrr", dips, 100.0, weights={"d0": 0.9, "d1": 0.1})
        assert rates["d0"] == pytest.approx(90.0)

    def test_split_unknown_policy(self):
        with pytest.raises(ConfigurationError):
            split_for_policy("bogus", make_dips([400.0]), 100.0)


class TestFluidCluster:
    def test_weights_drive_rates(self):
        dips = make_dips([400.0, 400.0])
        cluster = FluidCluster(dips=dips, total_rate_rps=400.0, policy_name="wrr")
        cluster.set_weights({"d0": 0.75, "d1": 0.25})
        assert dips["d0"].offered_rate_rps == pytest.approx(300.0)
        assert dips["d1"].offered_rate_rps == pytest.approx(100.0)

    def test_state_reports_latency_and_util(self):
        dips = make_dips([400.0, 400.0])
        cluster = FluidCluster(dips=dips, total_rate_rps=400.0)
        state = cluster.state()
        assert set(state.mean_latency_ms) == {"d0", "d1"}
        assert state.overall_mean_latency_ms() > 0

    def test_failed_dip_gets_no_traffic(self):
        dips = make_dips([400.0, 400.0])
        cluster = FluidCluster(dips=dips, total_rate_rps=400.0)
        cluster.fail_dip("d0")
        assert dips["d0"].offered_rate_rps == 0.0
        assert dips["d1"].offered_rate_rps == pytest.approx(400.0)
        cluster.recover_dip("d0")
        assert dips["d0"].offered_rate_rps > 0

    def test_traffic_scaling(self):
        dips = make_dips([400.0, 400.0])
        cluster = FluidCluster(dips=dips, total_rate_rps=400.0)
        cluster.scale_traffic(1.5)
        assert cluster.total_rate_rps == pytest.approx(600.0)

    def test_capacity_change_updates_latency(self):
        dips = make_dips([400.0, 400.0])
        cluster = FluidCluster(dips=dips, total_rate_rps=560.0)
        before = cluster.state().mean_latency_ms["d0"]
        cluster.set_capacity_ratio("d0", 0.6)
        after = cluster.state().mean_latency_ms["d0"]
        assert after > before

    def test_advance_accumulates_time(self):
        cluster = FluidCluster(dips=make_dips([400.0]), total_rate_rps=100.0)
        cluster.advance(5.0)
        cluster.advance(2.5)
        assert cluster.time == pytest.approx(7.5)

    def test_unknown_dip_weight_rejected(self):
        cluster = FluidCluster(dips=make_dips([400.0]), total_rate_rps=100.0)
        with pytest.raises(ConfigurationError):
            cluster.set_weights({"ghost": 0.5})

    def test_overall_latency_request_weighted(self):
        dips = make_dips([400.0, 400.0])
        cluster = FluidCluster(dips=dips, total_rate_rps=500.0, policy_name="wrr")
        cluster.set_weights({"d0": 0.9, "d1": 0.1})
        state = cluster.state()
        # d0 is much hotter; the request-weighted mean must lean toward d0.
        assert state.overall_mean_latency_ms() > (
            0.5 * state.mean_latency_ms["d0"] + 0.5 * state.mean_latency_ms["d1"]
        ) - state.mean_latency_ms["d0"] * 0.5


class TestRequestCluster:
    def test_latency_matches_analytic_model(self):
        """The DES and the fluid model must agree on mean latency."""
        dips = make_dips([400.0], cores=1)
        cluster = RequestCluster(
            dips, RoundRobin(list(dips)), rate_rps=200.0, seed=3
        )
        result = cluster.run(num_requests=4000, warmup_s=2.0)
        analytic = dips["d0"].latency_model.mean_latency_ms(200.0)
        measured = result.metrics.mean_latency_ms()
        assert measured == pytest.approx(analytic, rel=0.2)

    def test_utilization_matches_offered_load(self):
        dips = make_dips([400.0])
        cluster = RequestCluster(dips, RoundRobin(list(dips)), rate_rps=200.0, seed=3)
        result = cluster.run(num_requests=3000, warmup_s=2.0)
        util = result.metrics.utilization()["d0"]
        assert util == pytest.approx(0.5, abs=0.07)

    def test_weighted_policy_splits_requests(self):
        dips = make_dips([400.0, 400.0])
        policy = WeightedRoundRobin(list(dips), weights={"d0": 0.8, "d1": 0.2})
        cluster = RequestCluster(dips, policy, rate_rps=300.0, seed=3)
        cluster.run(num_requests=3000)
        share = cluster.request_share()
        assert share["d0"] == pytest.approx(0.8, abs=0.03)

    def test_set_weights_on_running_cluster(self):
        dips = make_dips([400.0, 400.0])
        policy = WeightedRoundRobin(list(dips))
        cluster = RequestCluster(dips, policy, rate_rps=100.0, seed=3)
        cluster.set_weights({"d0": 1.0, "d1": 0.0})
        cluster.run(num_requests=500)
        assert cluster.request_share().get("d1", 0.0) == 0.0

    def test_overload_produces_drops(self):
        dips = make_dips([100.0])
        cluster = RequestCluster(
            dips, RoundRobin(list(dips)), rate_rps=300.0, seed=3, queue_capacity=16
        )
        result = cluster.run(duration_s=20.0)
        assert result.requests_dropped > 0
        assert result.drop_fraction > 0.1

    def test_least_connection_uses_live_counts(self):
        dips = make_dips([400.0, 200.0])
        policy = LeastConnection(list(dips))
        cluster = RequestCluster(dips, policy, rate_rps=400.0, seed=3)
        cluster.run(num_requests=4000, warmup_s=1.0)
        share = cluster.request_share()
        # LC sends more requests to the faster DIP (it frees slots sooner).
        assert share["d0"] > share["d1"]

    def test_requires_one_request_budget(self):
        dips = make_dips([400.0])
        cluster = RequestCluster(dips, RoundRobin(list(dips)), rate_rps=10.0)
        with pytest.raises(ConfigurationError):
            cluster.run()
        with pytest.raises(ConfigurationError):
            cluster.run(num_requests=10, duration_s=1.0)

    def test_failed_dip_requests_marked_failed(self):
        dips = make_dips([400.0, 400.0])
        dips["d1"].fail()
        policy = RoundRobin(list(dips))
        cluster = RequestCluster(dips, policy, rate_rps=100.0, seed=3)
        result = cluster.run(num_requests=200)
        assert result.requests_dropped > 0


class TestMetricsCollector:
    def test_mean_and_percentiles(self):
        metrics = MetricsCollector()
        for latency in (1.0, 2.0, 3.0, 4.0):
            metrics.record_request("a", latency)
        assert metrics.mean_latency_ms() == pytest.approx(2.5)
        assert metrics.percentile_latency_ms(50) == pytest.approx(2.5)

    def test_dip_filter(self):
        metrics = MetricsCollector()
        metrics.record_request("a", 1.0)
        metrics.record_request("b", 9.0)
        assert metrics.mean_latency_ms(dips=["a"]) == pytest.approx(1.0)

    def test_drop_fraction(self):
        metrics = MetricsCollector()
        metrics.record_request("a", 1.0)
        metrics.record_request("a", None, completed=False)
        assert metrics.drop_fraction() == pytest.approx(0.5)

    def test_request_share(self):
        metrics = MetricsCollector()
        metrics.record_request("a", 1.0)
        metrics.record_request("a", 1.0)
        metrics.record_request("b", 1.0)
        assert metrics.request_share()["a"] == pytest.approx(2 / 3)

    def test_summaries(self):
        metrics = MetricsCollector()
        metrics.record_request("a", 1.0)
        metrics.record_utilization({"a": 0.4})
        summary = metrics.dip_summary("a")
        assert summary.requests == 1
        assert summary.cpu_utilization == pytest.approx(0.4)

    def test_cdf(self):
        metrics = MetricsCollector()
        for latency in range(1, 101):
            metrics.record_request("a", float(latency))
        latencies, fractions = metrics.latency_cdf(points=11)
        assert latencies[0] <= latencies[-1]
        assert fractions[-1] == pytest.approx(1.0)

    def test_comparison_helpers(self):
        slow, fast = MetricsCollector(), MetricsCollector()
        for latency in range(1, 101):
            slow.record_request("a", float(latency))
            fast.record_request("a", float(latency) * 0.5)
        assert fraction_of_requests_improved(slow, fast) == pytest.approx(1.0)
        assert max_latency_gain(slow, fast) == pytest.approx(0.5, abs=0.05)

    def test_empty_metrics(self):
        metrics = MetricsCollector()
        assert metrics.request_share() == {}
        assert metrics.drop_fraction() == 0.0


class TestVip:
    def test_add_remove_dip(self):
        vip = Vip(vip_id="v1")
        dip = DipServer("d1", custom_vm_type("t", vcpus=1, capacity_rps=100.0))
        vip.add_dip(dip)
        assert vip.dip_ids() == ("d1",)
        with pytest.raises(ConfigurationError):
            vip.add_dip(dip)
        vip.remove_dip("d1")
        assert len(vip) == 0

    def test_healthy_and_capacity(self):
        vip = Vip(vip_id="v1")
        a = DipServer("a", custom_vm_type("t", vcpus=1, capacity_rps=100.0))
        b = DipServer("b", custom_vm_type("t", vcpus=1, capacity_rps=300.0))
        vip.add_dip(a)
        vip.add_dip(b)
        b.fail()
        assert vip.healthy_dip_ids() == ("a",)
        assert vip.total_capacity_rps == pytest.approx(100.0)

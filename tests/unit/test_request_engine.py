"""Tests for the rebuilt request-simulation hot path.

Covers the guarantees the streaming engine must keep: per-seed determinism
(bit-identical counters and summaries across runs), agreement with the
analytic M/M/c model ("agree on means by construction"), O(1) pending-event
accounting, bounded heap growth under streaming arrivals, and the columnar
metrics compatibility surface.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.backends import DipServer, custom_vm_type
from repro.lb import FiveTupleHash, LeastConnection, RoundRobin
from repro.sim import EventScheduler, MetricsCollector, RequestCluster, WorkloadGenerator


def make_dips(capacities, seed=0, cores=1):
    dips = {}
    for index, capacity in enumerate(capacities):
        vm = custom_vm_type(f"vm{index}", vcpus=cores, capacity_rps=capacity)
        dips[f"d{index}"] = DipServer(
            f"d{index}", vm, seed=seed + index, jitter_fraction=0.0
        )
    return dips


class TestSchedulerFastPath:
    def test_tuple_payload_dispatch(self):
        scheduler = EventScheduler()
        seen = []
        scheduler.schedule(1.0, (seen.append, "a"))
        scheduler.schedule(2.0, lambda: seen.append("b"))
        scheduler.run_until(3.0)
        assert seen == ["a", "b"]

    def test_pending_events_counter_tracks_schedule_cancel_pop(self):
        scheduler = EventScheduler()
        assert scheduler.pending_events == 0
        scheduler.schedule(1.0, lambda: None)
        scheduler.schedule(2.0, lambda: None)
        handle = scheduler.schedule_cancellable(3.0, lambda: None)
        assert scheduler.pending_events == 3
        handle.cancel()
        assert scheduler.pending_events == 2
        handle.cancel()  # idempotent
        assert scheduler.pending_events == 2
        scheduler.run_until(1.5)
        assert scheduler.pending_events == 1
        scheduler.run_until(10.0)
        assert scheduler.pending_events == 0

    def test_peak_pending_records_high_water_mark(self):
        scheduler = EventScheduler()
        for delay in (1.0, 2.0, 3.0):
            scheduler.schedule(delay, lambda: None)
        scheduler.run_until(10.0)
        assert scheduler.peak_pending_events == 3
        assert scheduler.pending_events == 0

    def test_cancel_after_fire_does_not_corrupt_pending_count(self):
        """Regression: cancelling an already-fired handle must be a no-op."""
        scheduler = EventScheduler()
        handle = scheduler.schedule_cancellable(1.0, lambda: None)
        scheduler.run_until(2.0)
        handle.cancel()
        assert scheduler.pending_events == 0
        scheduler.schedule(1.0, lambda: None)
        assert scheduler.pending_events == 1
        assert scheduler.peak_pending_events == 1

    def test_cancellable_events_keep_time_order(self):
        scheduler = EventScheduler()
        order = []
        scheduler.schedule(2.0, lambda: order.append("plain"))
        scheduler.schedule_cancellable(1.0, lambda: order.append("cancellable"))
        scheduler.run_until(5.0)
        assert order == ["cancellable", "plain"]

    def test_run_stream_merges_arrivals_with_heap_events(self):
        scheduler = EventScheduler()
        order = []
        stream = iter([1.0, 2.5, math.inf])

        def fire():
            order.append(("arrival", scheduler.now))
            return next(stream)

        scheduler.schedule(2.0, lambda: order.append(("event", scheduler.now)))
        executed = scheduler.run_stream(10.0, 0.5, fire)
        assert executed == 4
        assert order == [
            ("arrival", 0.5),
            ("arrival", 1.0),
            ("event", 2.0),
            ("arrival", 2.5),
        ]
        assert scheduler.now == 10.0

    def test_run_stream_with_no_arrivals_drains_heap(self):
        scheduler = EventScheduler()
        fired = []
        scheduler.schedule(1.0, lambda: fired.append(True))
        executed = scheduler.run_stream(5.0, math.inf, lambda: math.inf)
        assert executed == 1
        assert fired == [True]


class TestWorkloadBatches:
    def test_batch_port_sequence_matches_scalar_wraparound(self):
        batched = WorkloadGenerator(rate_rps=10.0, seed=1)
        scalar = WorkloadGenerator(rate_rps=10.0, seed=1)
        scalar._next_port = batched._next_port = 64995
        _, _, ports = batched.next_batch(12)
        expected = [scalar.next_flow().src_port for _ in range(12)]
        assert ports.tolist() == expected

    def test_batch_advances_request_counter(self):
        generator = WorkloadGenerator(rate_rps=10.0, seed=1)
        generator.next_batch(64)
        generator.next_interarrival_batch(16)
        assert generator.requests_generated == 80

    def test_batch_interarrivals_match_rate(self):
        generator = WorkloadGenerator(rate_rps=100.0, seed=3)
        gaps, _, _ = generator.next_batch(4000)
        assert gaps.mean() == pytest.approx(0.01, rel=0.1)

    def test_same_seed_same_batches(self):
        a = WorkloadGenerator(rate_rps=50.0, seed=9)
        b = WorkloadGenerator(rate_rps=50.0, seed=9)
        ga, ca, pa = a.next_batch(256)
        gb, cb, pb = b.next_batch(256)
        assert np.array_equal(ga, gb)
        assert np.array_equal(ca, cb)
        assert np.array_equal(pa, pb)


class TestDeterminism:
    def _run(self, policy_cls, seed=11, requests=4000, warmup=0.5):
        dips = make_dips([400.0, 400.0, 300.0], cores=2)
        cluster = RequestCluster(
            dips, policy_cls(list(dips)), rate_rps=600.0, seed=seed
        )
        return cluster.run(num_requests=requests, warmup_s=warmup)

    @pytest.mark.parametrize("policy_cls", [RoundRobin, LeastConnection, FiveTupleHash])
    def test_same_seed_bit_identical_runs(self, policy_cls):
        first = self._run(policy_cls)
        second = self._run(policy_cls)
        assert first.requests_submitted == second.requests_submitted
        assert first.requests_completed == second.requests_completed
        assert first.requests_dropped == second.requests_dropped
        assert first.metrics.request_share() == second.metrics.request_share()
        first_summaries = first.metrics.summaries()
        second_summaries = second.metrics.summaries()
        assert first_summaries.keys() == second_summaries.keys()
        for dip, summary in first_summaries.items():
            other = second_summaries[dip]
            assert summary.requests == other.requests
            # bit-identical, not approximately equal
            assert summary.mean_latency_ms == other.mean_latency_ms
            assert summary.p99_latency_ms == other.p99_latency_ms
            assert summary.drop_fraction == other.drop_fraction

    def test_different_seeds_differ(self):
        first = self._run(RoundRobin, seed=11)
        second = self._run(RoundRobin, seed=12)
        assert (
            first.metrics.mean_latency_ms() != second.metrics.mean_latency_ms()
        )


class TestAnalyticAgreement:
    def test_mean_latency_matches_mmc_model_multicore(self):
        """Request-level mean latency tracks the analytic M/M/c mean.

        The 'agree on means by construction' claim in sim/queueing.py: a
        4-worker station at moderate load must reproduce the Erlang-C mean.
        """
        dips = make_dips([800.0], cores=4)
        rate = 0.6 * 800.0
        cluster = RequestCluster(dips, RoundRobin(list(dips)), rate_rps=rate, seed=5)
        result = cluster.run(num_requests=20_000, warmup_s=2.0)
        analytic = dips["d0"].latency_model.mean_latency_ms(rate)
        measured = result.metrics.mean_latency_ms()
        assert measured == pytest.approx(analytic, rel=0.1)

    def test_mean_latency_matches_under_degraded_capacity(self):
        """The cached mean service time must track antagonist changes."""
        dips = make_dips([500.0], cores=2)
        dips["d0"].set_capacity_ratio(0.6)
        rate = 0.5 * 500.0 * 0.6
        cluster = RequestCluster(dips, RoundRobin(list(dips)), rate_rps=rate, seed=5)
        result = cluster.run(num_requests=15_000, warmup_s=2.0)
        analytic = dips["d0"].latency_model.mean_latency_ms(rate)
        assert result.metrics.mean_latency_ms() == pytest.approx(analytic, rel=0.12)


class TestStreamingArrivals:
    def test_peak_heap_stays_bounded(self):
        """Peak scheduled events must be O(in-flight), not O(total requests)."""
        dips = make_dips([400.0] * 8, cores=2)
        cluster = RequestCluster(dips, RoundRobin(list(dips)), rate_rps=1800.0, seed=3)
        result = cluster.run(num_requests=30_000)
        assert result.requests_submitted >= 29_000
        # 8 DIPs x 2 workers + 8 x 256 queue slots + observation event is the
        # absolute ceiling; typical peaks are far below the request count.
        assert cluster.scheduler.peak_pending_events < 3000
        assert cluster.scheduler.pending_events == 0

    def test_warmup_requests_not_recorded(self):
        dips = make_dips([400.0])
        cluster = RequestCluster(dips, RoundRobin(list(dips)), rate_rps=200.0, seed=3)
        result = cluster.run(num_requests=1000, warmup_s=2.0)
        # ~400 warmup arrivals happened but were not recorded.
        assert result.metrics.total_requests == result.requests_submitted
        assert result.requests_submitted < cluster.workload.requests_generated


class TestColumnarMetrics:
    def test_records_lazy_view_round_trips(self):
        metrics = MetricsCollector()
        metrics.record_request("a", 1.5, completed=True, timestamp=0.1)
        metrics.record_request("b", None, completed=False, timestamp=0.2)
        records = metrics.records
        assert len(records) == 2
        assert records[0].dip == "a"
        assert records[0].latency_ms == pytest.approx(1.5)
        assert records[1].dip == "b"
        assert math.isnan(records[1].latency_ms)
        assert not records[1].completed
        assert records[1].timestamp == pytest.approx(0.2)

    def test_queries_see_staged_records(self):
        """Aggregates must include records still in the staging buffers."""
        metrics = MetricsCollector()
        for _ in range(10):
            metrics.record_request("a", 2.0)
        assert metrics.total_requests == 10
        assert metrics.mean_latency_ms() == pytest.approx(2.0)
        assert metrics.request_share() == {"a": 1.0}
        # interleave more records after a flush-inducing query
        metrics.record_request("b", 4.0)
        assert metrics.total_requests == 11
        assert metrics.request_share()["b"] == pytest.approx(1 / 11)

    def test_large_ingest_crosses_chunk_boundary(self):
        metrics = MetricsCollector()
        for i in range(20_000):
            metrics.record_request("a" if i % 2 else "b", float(i % 7), completed=i % 5 != 0)
        assert metrics.total_requests == 20_000
        assert metrics.drop_fraction() == pytest.approx(0.2)
        assert metrics.latencies_ms().size == 16_000

    def test_dip_filter_with_unknown_dip(self):
        metrics = MetricsCollector()
        metrics.record_request("a", 1.0)
        assert metrics.latencies_ms(dips=["ghost"]).size == 0
        assert metrics.drop_fraction(dips=["ghost"]) == 0.0

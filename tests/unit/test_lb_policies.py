"""Unit tests for the L4 LB policies and facades."""

from __future__ import annotations

import collections

import pytest

from repro.exceptions import ConfigurationError
from repro.lb import (
    AzureLBSim,
    AzureTrafficManagerSim,
    DnsWeightedPolicy,
    FiveTupleHash,
    FlowKey,
    HAProxySim,
    LeastConnection,
    MuxPool,
    NginxSim,
    PowerOfTwo,
    RandomSelect,
    RoundRobin,
    WeightedLeastConnection,
    WeightedRandom,
    WeightedRoundRobin,
    make_policy,
    policy_registry,
    stable_hash,
)

DIPS = ["a", "b", "c"]


def flows(n: int):
    return [
        FlowKey(src_ip=f"10.0.{i % 7}.{i % 251}", src_port=1024 + i, dst_ip="vip", dst_port=80)
        for i in range(n)
    ]


def selection_counts(policy, n=3000):
    counter: collections.Counter[str] = collections.Counter()
    for flow in flows(n):
        counter[policy.select(flow)] += 1
    return counter


class TestRegistry:
    def test_all_policies_registered(self):
        names = set(policy_registry())
        assert {"rr", "wrr", "lc", "wlc", "random", "wrandom", "p2", "hash", "dns"} <= names

    def test_make_policy(self):
        policy = make_policy("rr", DIPS)
        assert isinstance(policy, RoundRobin)

    def test_make_unknown_policy(self):
        with pytest.raises(ConfigurationError):
            make_policy("nope", DIPS)

    def test_weighted_flag(self):
        registry = policy_registry()
        assert registry["wrr"].weighted
        assert not registry["rr"].weighted


class TestBasePolicy:
    def test_requires_dips(self):
        with pytest.raises(ConfigurationError):
            RoundRobin([])

    def test_duplicate_dips_rejected(self):
        with pytest.raises(ConfigurationError):
            RoundRobin(["a", "a"])

    def test_add_remove_dip(self):
        policy = RoundRobin(DIPS)
        policy.add_dip("d")
        assert "d" in policy.dips
        policy.remove_dip("d")
        assert "d" not in policy.dips

    def test_add_existing_dip_rejected(self):
        policy = RoundRobin(DIPS)
        with pytest.raises(ConfigurationError):
            policy.add_dip("a")

    def test_set_weights_unknown_dip(self):
        policy = WeightedRoundRobin(DIPS)
        with pytest.raises(ConfigurationError):
            policy.set_weights({"ghost": 0.5})

    def test_negative_weight_rejected(self):
        policy = WeightedRoundRobin(DIPS)
        with pytest.raises(ConfigurationError):
            policy.set_weights({"a": -0.1})

    def test_connection_counters(self):
        policy = LeastConnection(DIPS)
        policy.on_connection_open("a")
        policy.on_connection_open("a")
        policy.on_connection_close("a")
        assert policy.view("a").active_connections == 1

    def test_connection_close_never_negative(self):
        policy = LeastConnection(DIPS)
        policy.on_connection_close("a")
        assert policy.view("a").active_connections == 0

    def test_unhealthy_dip_excluded(self):
        policy = RoundRobin(DIPS)
        policy.set_healthy("a", False)
        counts = selection_counts(policy, 300)
        assert "a" not in counts


class TestRoundRobin:
    def test_even_rotation(self):
        counts = selection_counts(RoundRobin(DIPS), 300)
        assert all(count == 100 for count in counts.values())

    def test_does_not_honor_weights(self):
        policy = RoundRobin(DIPS)
        assert not policy.supports_weights


class TestWeightedRoundRobin:
    def test_split_proportional_to_weights(self):
        policy = WeightedRoundRobin(DIPS, weights={"a": 0.5, "b": 0.3, "c": 0.2})
        counts = selection_counts(policy, 1000)
        assert counts["a"] == pytest.approx(500, abs=10)
        assert counts["b"] == pytest.approx(300, abs=10)
        assert counts["c"] == pytest.approx(200, abs=10)

    def test_zero_weight_dip_gets_nothing(self):
        policy = WeightedRoundRobin(DIPS, weights={"a": 0.5, "b": 0.5, "c": 0.0})
        counts = selection_counts(policy, 1000)
        assert counts.get("c", 0) == 0

    def test_all_zero_weights_degrades_to_rr(self):
        policy = WeightedRoundRobin(DIPS, weights={d: 0.0 for d in DIPS})
        counts = selection_counts(policy, 300)
        assert all(count == pytest.approx(100, abs=5) for count in counts.values())

    def test_smoothness_no_bursts(self):
        """Smooth WRR should interleave rather than emit long runs."""
        policy = WeightedRoundRobin(["a", "b"], weights={"a": 0.5, "b": 0.5})
        picks = [policy.select(f) for f in flows(10)]
        longest_run = max(
            len(list(group)) for _, group in __import__("itertools").groupby(picks)
        )
        assert longest_run <= 2

    def test_reprogramming_takes_effect(self):
        policy = WeightedRoundRobin(DIPS, weights={"a": 1.0, "b": 0.0, "c": 0.0})
        assert selection_counts(policy, 100)["a"] == 100
        policy.set_weights({"a": 0.0, "b": 1.0, "c": 0.0})
        assert selection_counts(policy, 100)["b"] == 100


class TestLeastConnection:
    def test_prefers_fewest_connections(self):
        policy = LeastConnection(DIPS)
        policy.on_connection_open("a")
        policy.on_connection_open("b")
        assert policy.select(flows(1)[0]) == "c"

    def test_ties_broken_deterministically(self):
        policy = LeastConnection(DIPS)
        assert policy.select(flows(1)[0]) == "a"

    def test_weighted_least_connection_scales_by_weight(self):
        policy = WeightedLeastConnection(DIPS, weights={"a": 2.0, "b": 1.0, "c": 1.0})
        for _ in range(2):
            policy.on_connection_open("a")
        policy.on_connection_open("b")
        policy.on_connection_open("c")
        # a has 2 conns / weight 2 = 1.0; b,c have 1/1 = 1.0 → tie → "a" first id.
        assert policy.select(flows(1)[0]) == "a"

    def test_equalises_concurrency_not_capacity(self):
        """The §2.1 failure mode: LC splits concurrency equally."""
        policy = LeastConnection(DIPS)
        assignments = collections.Counter()
        for flow in flows(90):
            dip = policy.select(flow)
            policy.on_connection_open(dip)
            assignments[dip] += 1
        assert all(count == 30 for count in assignments.values())


class TestRandomAndP2:
    def test_random_roughly_uniform(self):
        counts = selection_counts(RandomSelect(DIPS, seed=1), 3000)
        for count in counts.values():
            assert count == pytest.approx(1000, rel=0.15)

    def test_weighted_random_follows_weights(self):
        policy = WeightedRandom(DIPS, weights={"a": 0.6, "b": 0.3, "c": 0.1}, seed=2)
        counts = selection_counts(policy, 5000)
        assert counts["a"] / 5000 == pytest.approx(0.6, abs=0.05)
        assert counts["c"] / 5000 == pytest.approx(0.1, abs=0.05)

    def test_p2_prefers_lower_utilization(self):
        policy = PowerOfTwo(DIPS, seed=3)
        policy.observe_utilization({"a": 0.9, "b": 0.1, "c": 0.5})
        counts = selection_counts(policy, 3000)
        assert counts["b"] > counts["a"]

    def test_p2_falls_back_to_connections(self):
        policy = PowerOfTwo(DIPS, use_cpu=False, seed=3)
        for _ in range(10):
            policy.on_connection_open("a")
        counts = selection_counts(policy, 2000)
        assert counts["a"] < counts["b"]

    def test_p2_single_dip(self):
        policy = PowerOfTwo(["only"], seed=1)
        assert policy.select(flows(1)[0]) == "only"


class TestHash:
    def test_deterministic(self):
        policy = FiveTupleHash(DIPS)
        flow = flows(1)[0]
        assert policy.select(flow) == policy.select(flow)

    def test_roughly_equal_split(self):
        counts = selection_counts(FiveTupleHash(DIPS), 3000)
        for count in counts.values():
            assert count == pytest.approx(1000, rel=0.2)

    def test_stable_hash_is_process_independent(self):
        flow = FlowKey(src_ip="1.2.3.4", src_port=1000, dst_ip="vip", dst_port=80)
        assert stable_hash(flow) == stable_hash(flow)
        assert stable_hash(flow) != stable_hash(flow, salt="other")


class TestDns:
    def test_weighted_resolution(self):
        policy = DnsWeightedPolicy(DIPS, cache_ttl_s=0.0, seed=4)
        policy.set_weights({"a": 0.2, "b": 0.3, "c": 0.5})
        counts = selection_counts(policy, 5000)
        assert counts["c"] / 5000 == pytest.approx(0.5, abs=0.05)
        assert counts["a"] / 5000 == pytest.approx(0.2, abs=0.05)

    def test_cache_pins_client_to_dip(self):
        policy = DnsWeightedPolicy(DIPS, cache_ttl_s=100.0, seed=4)
        flow = FlowKey(src_ip="10.9.9.9", src_port=1, dst_ip="vip", dst_port=80)
        first = policy.select(flow)
        for _ in range(20):
            assert policy.select(flow) == first

    def test_cache_expiry_allows_new_resolution(self):
        policy = DnsWeightedPolicy(DIPS, cache_ttl_s=10.0, seed=4)
        policy.set_weights({"a": 1.0, "b": 0.0, "c": 0.0})
        flow = FlowKey(src_ip="10.9.9.9", src_port=1, dst_ip="vip", dst_port=80)
        assert policy.select(flow) == "a"
        policy.set_weights({"a": 0.0, "b": 1.0, "c": 0.0})
        # Still cached:
        assert policy.select(flow) == "a"
        policy.advance_time(11.0)
        assert policy.select(flow) == "b"


class TestFacades:
    def test_haproxy_algorithms(self):
        lb = HAProxySim(DIPS, algorithm="leastconn")
        assert isinstance(lb.policy, LeastConnection)
        assert not lb.supports_weights

    def test_haproxy_weighted(self):
        lb = HAProxySim(DIPS, algorithm="weighted-roundrobin")
        lb.set_weights({"a": 0.7, "b": 0.2, "c": 0.1})
        assert lb.weights()["a"] == pytest.approx(0.7)

    def test_haproxy_unknown_algorithm(self):
        with pytest.raises(ConfigurationError):
            HAProxySim(DIPS, algorithm="magic")

    def test_haproxy_unweighted_rejects_weights(self):
        lb = HAProxySim(DIPS, algorithm="roundrobin")
        with pytest.raises(ConfigurationError):
            lb.set_weights({"a": 0.5})

    def test_haproxy_set_single_server_weight(self):
        lb = HAProxySim(DIPS, algorithm="weighted-roundrobin")
        lb.set_server_weight("b", 0.9)
        assert lb.weights()["b"] == pytest.approx(0.9)

    def test_nginx_default_weighted(self):
        lb = NginxSim(DIPS)
        assert lb.supports_weights

    def test_azure_lb_has_no_weight_interface(self):
        lb = AzureLBSim(DIPS)
        assert not lb.supports_weights
        with pytest.raises(ConfigurationError):
            lb.set_weights({"a": 0.5})

    def test_azure_traffic_manager_is_weighted_dns(self):
        tm = AzureTrafficManagerSim(DIPS, cache_ttl_s=0.0, seed=1)
        tm.set_weights({"a": 0.2, "b": 0.3, "c": 0.5})
        counts = selection_counts(tm.policy, 4000)
        assert counts["c"] > counts["a"]

    def test_disable_enable_server(self):
        lb = HAProxySim(DIPS, algorithm="roundrobin")
        lb.disable_server("a")
        assert "a" not in selection_counts(lb.policy, 300)
        lb.enable_server("a")
        assert "a" in selection_counts(lb.policy, 300)


class TestMuxPool:
    def test_weights_propagate_to_all_muxes(self):
        pool = MuxPool(lambda: WeightedRoundRobin(DIPS), num_muxes=3)
        pool.program_weights({"a": 0.6, "b": 0.3, "c": 0.1}, at_time=5.0)
        for mux in pool.muxes:
            assert mux.weights()["a"] == pytest.approx(0.6)
        assert pool.weight_updates[-1].time == 5.0

    def test_ecmp_spreads_flows_across_muxes(self):
        pool = MuxPool(lambda: RoundRobin(DIPS), num_muxes=4)
        used = {id(pool.mux_for(flow)) for flow in flows(200)}
        assert len(used) == 4

    def test_same_flow_same_mux(self):
        pool = MuxPool(lambda: RoundRobin(DIPS), num_muxes=4)
        flow = flows(1)[0]
        assert pool.mux_for(flow) is pool.mux_for(flow)

    def test_select_overall_split_follows_weights(self):
        pool = MuxPool(lambda: WeightedRoundRobin(DIPS), num_muxes=3)
        pool.program_weights({"a": 0.5, "b": 0.5, "c": 0.0})
        counts = collections.Counter(pool.select(flow) for flow in flows(2000))
        assert counts.get("c", 0) == 0
        assert counts["a"] == pytest.approx(1000, rel=0.1)

    def test_requires_at_least_one_mux(self):
        with pytest.raises(ConfigurationError):
            MuxPool(lambda: RoundRobin(DIPS), num_muxes=0)

    def test_set_healthy_propagates(self):
        pool = MuxPool(lambda: RoundRobin(DIPS), num_muxes=2)
        pool.set_healthy("a", False)
        counts = collections.Counter(pool.select(flow) for flow in flows(200))
        assert "a" not in counts

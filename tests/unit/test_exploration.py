"""Unit tests for Algorithm 1 (adaptive weight exploration, §4.3)."""

from __future__ import annotations

import pytest

from repro.core.config import ExplorationConfig
from repro.core.exploration import ExplorationState
from repro.exceptions import ConfigurationError


def make_state(l0=2.0, initial=0.05, **config_kwargs) -> ExplorationState:
    return ExplorationState(
        dip="d1",
        l0_ms=l0,
        initial_weight=initial,
        config=ExplorationConfig(**config_kwargs),
    )


class TestInitialisation:
    def test_first_proposal_is_initial_weight(self):
        state = make_state(initial=0.05)
        assert state.propose() == pytest.approx(0.05)

    def test_idle_point_recorded(self):
        state = make_state(l0=3.0)
        assert state.points[0].weight == 0.0
        assert state.points[0].latency_ms == pytest.approx(3.0)

    def test_rejects_nonpositive_l0(self):
        with pytest.raises(ConfigurationError):
            make_state(l0=0.0)

    def test_rejects_nonpositive_initial(self):
        with pytest.raises(ConfigurationError):
            make_state(initial=0.0)


class TestRunPhase:
    def test_weight_increases_without_drop(self):
        state = make_state(l0=2.0, initial=0.05)
        step = state.observe(0.05, 2.2)
        assert step.mode == "run"
        assert step.next_weight > 0.05

    def test_increase_proportional_to_l0_over_lw(self):
        """Line 6: w_next = w_now + w_now * α * l0/lw."""
        state = make_state(l0=2.0, initial=0.05, alpha=1.0)
        step = state.observe(0.05, 4.0)  # l0/lw = 0.5
        assert step.next_weight == pytest.approx(0.05 + 0.05 * 0.5)

    def test_lower_latency_gives_bigger_step(self):
        low = make_state(l0=2.0, initial=0.05)
        high = make_state(l0=2.0, initial=0.05)
        step_low = low.observe(0.05, 2.1)
        step_high = high.observe(0.05, 8.0)
        assert step_low.next_weight > step_high.next_weight

    def test_w_max_tracks_largest_undropped_weight(self):
        state = make_state(l0=2.0, initial=0.05)
        state.observe(0.05, 2.5)
        state.observe(0.09, 3.0)
        assert state.w_max == pytest.approx(0.09)

    def test_alpha_scales_increase(self):
        fast = make_state(l0=2.0, initial=0.05, alpha=1.0)
        slow = make_state(l0=2.0, initial=0.05, alpha=0.5)
        assert fast.observe(0.05, 2.0).next_weight > slow.observe(0.05, 2.0).next_weight

    def test_next_weight_capped_at_one(self):
        state = make_state(l0=2.0, initial=0.9)
        step = state.observe(0.9, 2.0)
        assert step.next_weight <= 1.0


class TestBacktrackPhase:
    def test_drop_triggers_backtrack(self):
        state = make_state(l0=2.0, initial=0.05)
        state.observe(0.05, 2.5)
        step = state.observe(0.10, 3.0, dropped=True)
        assert step.mode == "backtrack"
        assert step.next_weight == pytest.approx((0.10 + 0.05) / 2)

    def test_latency_5x_l0_counts_as_drop(self):
        """The paper treats lw >= 5·l0 as a drop signal."""
        state = make_state(l0=2.0, initial=0.05)
        state.observe(0.05, 2.5)
        step = state.observe(0.10, 10.0)  # exactly 5× l0
        assert step.mode == "backtrack"

    def test_backtrack_does_not_update_w_max(self):
        state = make_state(l0=2.0, initial=0.05)
        state.observe(0.05, 2.5)
        state.observe(0.10, 3.0, dropped=True)
        assert state.w_max == pytest.approx(0.05)

    def test_real_drop_excluded_from_regression_points(self):
        state = make_state(l0=2.0, initial=0.05)
        state.observe(0.05, 2.5, dropped=True)
        usable = state.usable_points()
        assert all(p.weight != 0.05 for p in usable)

    def test_latency_only_drop_signal_still_usable_for_regression(self):
        """High latency without packet loss stays in the regression set (§6.1)."""
        state = make_state(l0=2.0, initial=0.05)
        state.observe(0.05, 11.0)  # > 5x l0, no packet drop
        assert any(p.weight == pytest.approx(0.05) for p in state.usable_points())


class TestConvergence:
    def test_small_step_finishes_exploration(self):
        state = make_state(l0=2.0, initial=0.05, convergence_fraction=0.05)
        state.observe(0.100, 2.5)
        step = state.observe(0.104, 2.6)  # step 0.004 <= 5% of 0.104
        assert step.is_exploration_done
        assert state.done

    def test_large_step_does_not_finish(self):
        state = make_state(l0=2.0, initial=0.05)
        state.observe(0.05, 2.5)
        step = state.observe(0.10, 2.6)
        assert not step.is_exploration_done

    def test_observe_after_done_raises(self):
        state = make_state(l0=2.0, initial=0.05)
        state.observe(0.100, 2.5)
        state.observe(0.104, 2.6)
        with pytest.raises(ConfigurationError):
            state.observe(0.105, 2.7)

    def test_max_iterations_safety_net(self):
        state = make_state(l0=2.0, initial=0.05, max_iterations=3)
        state.observe(0.05, 2.1)
        state.observe(0.2, 2.2)
        step = state.observe(0.5, 2.3)
        assert step.is_exploration_done

    def test_converges_against_synthetic_dip(self):
        """End-to-end Algorithm 1 against a synthetic convex latency function."""
        capacity_weight = 0.2  # drops past this weight

        def measure(w):
            latency = 2.0 + 50.0 * max(0.0, w) ** 2 / capacity_weight
            dropped = w > capacity_weight
            return latency, dropped

        state = make_state(l0=2.0, initial=0.033)
        iterations = 0
        while not state.done and iterations < 25:
            w = state.propose()
            latency, dropped = measure(w)
            state.observe(w, latency, dropped=dropped)
            iterations += 1
        assert state.done
        # Paper: 8-10 iterations; allow some slack for the synthetic shape.
        assert iterations <= 20
        assert 0 < state.effective_w_max() <= capacity_weight + 1e-6
        # Enough clean points to fit a degree-2 curve.
        assert len(state.usable_points()) >= 3


class TestBookkeeping:
    def test_measurement_count_excludes_idle_point(self):
        state = make_state()
        state.observe(0.05, 2.5)
        state.observe(0.08, 2.7)
        assert state.measurements == 2

    def test_history_grows_per_observation(self):
        state = make_state()
        state.observe(0.05, 2.5)
        state.observe(0.08, 2.7)
        assert len(state.history) == 2
        assert state.history[0].iteration == 1

    def test_effective_w_max_falls_back_to_points(self):
        state = make_state(l0=2.0, initial=0.05)
        state.observe(0.05, 2.4)
        state.w_max = 0.0  # simulate: never set by the run phase
        assert state.effective_w_max() == pytest.approx(0.05)

    def test_invalid_observation_weight(self):
        state = make_state()
        with pytest.raises(ConfigurationError):
            state.observe(0.0, 2.5)

    def test_invalid_observation_latency(self):
        state = make_state()
        with pytest.raises(ConfigurationError):
            state.observe(0.05, 0.0)

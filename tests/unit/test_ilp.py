"""Unit tests for the Fig. 7 ILP wrapper and multi-step refinement."""

from __future__ import annotations

import pytest

from repro.core.config import IlpConfig
from repro.core.curve import WeightLatencyCurve
from repro.core.ilp import (
    build_assignment_problem,
    candidate_grid,
    compute_weights,
    solve_assignment,
)
from repro.core.multistep import compute_weights_multistep, refine_windows
from repro.exceptions import ConfigurationError, InfeasibleError


def linear_curve(l0: float, slope: float, w_max: float) -> WeightLatencyCurve:
    return WeightLatencyCurve(coefficients=(slope, l0), l0_ms=l0, w_max=w_max)


def quadratic_curve(l0: float, quad: float, w_max: float) -> WeightLatencyCurve:
    return WeightLatencyCurve(coefficients=(quad, 0.0, l0), l0_ms=l0, w_max=w_max)


@pytest.fixture
def heterogeneous_curves():
    """Four DIPs whose capacity (w_max) spans roughly 1:2:4:10."""
    return {
        "small-1": quadratic_curve(2.5, 800.0, 0.05),
        "small-2": quadratic_curve(2.5, 800.0, 0.05),
        "medium-1": quadratic_curve(2.5, 200.0, 0.10),
        "medium-2": quadratic_curve(2.5, 200.0, 0.10),
        "large-1": quadratic_curve(2.5, 50.0, 0.20),
        "large-2": quadratic_curve(2.5, 50.0, 0.20),
        "huge-1": quadratic_curve(2.2, 12.0, 0.50),
    }


class TestCandidateGrid:
    def test_spans_zero_to_wmax(self):
        curve = linear_curve(1.0, 10.0, 0.3)
        weights, latencies = candidate_grid(curve, count=4)
        assert weights == pytest.approx((0.0, 0.1, 0.2, 0.3))
        assert latencies[0] == pytest.approx(1.0)

    def test_respects_window(self):
        curve = linear_curve(1.0, 10.0, 0.3)
        weights, _ = candidate_grid(curve, count=3, lower=0.1, upper=0.2)
        assert weights == pytest.approx((0.1, 0.15, 0.2))

    def test_count_validation(self):
        with pytest.raises(ConfigurationError):
            candidate_grid(linear_curve(1.0, 1.0, 0.1), count=1)

    def test_latencies_monotone(self):
        curve = quadratic_curve(2.0, 100.0, 0.4)
        _, latencies = candidate_grid(curve, count=10)
        assert all(b >= a for a, b in zip(latencies, latencies[1:]))


class TestBuildProblem:
    def test_one_candidate_set_per_curve(self, heterogeneous_curves):
        problem = build_assignment_problem(heterogeneous_curves)
        assert problem.num_dips == len(heterogeneous_curves)
        assert problem.num_variables == len(heterogeneous_curves) * 10

    def test_custom_weights_per_dip(self, heterogeneous_curves):
        problem = build_assignment_problem(
            heterogeneous_curves, config=IlpConfig(weights_per_dip=5)
        )
        assert problem.num_variables == len(heterogeneous_curves) * 5

    def test_default_tolerance_positive(self, heterogeneous_curves):
        problem = build_assignment_problem(heterogeneous_curves)
        assert problem.total_weight_tolerance > 0

    def test_empty_curves_rejected(self):
        with pytest.raises(ConfigurationError):
            build_assignment_problem({})

    def test_theta_propagated(self, heterogeneous_curves):
        problem = build_assignment_problem(
            heterogeneous_curves, config=IlpConfig(theta=0.2)
        )
        assert problem.theta == pytest.approx(0.2)

    def test_windows_restrict_candidates(self, heterogeneous_curves):
        problem = build_assignment_problem(
            heterogeneous_curves, windows={"huge-1": (0.3, 0.4)}
        )
        cand = problem.candidates_for("huge-1")
        assert min(cand.weights) == pytest.approx(0.3)
        assert max(cand.weights) == pytest.approx(0.4)


class TestSolveAssignment:
    def test_weights_sum_to_one_after_normalisation(self, heterogeneous_curves):
        outcome = compute_weights("vip", heterogeneous_curves)
        assert sum(outcome.assignment.weights.values()) == pytest.approx(1.0)

    def test_bigger_capacity_gets_bigger_weight(self, heterogeneous_curves):
        outcome = compute_weights("vip", heterogeneous_curves)
        weights = outcome.assignment.weights
        assert weights["huge-1"] > weights["large-1"] > weights["medium-1"] > weights["small-1"]

    def test_objective_recorded(self, heterogeneous_curves):
        outcome = compute_weights("vip", heterogeneous_curves)
        assert outcome.assignment.objective_ms is not None
        assert outcome.assignment.objective_ms > 0
        assert outcome.assignment.solve_time_s is not None

    def test_undersized_pool_returns_overloaded_solution(self):
        # Two DIPs whose safe ranges cannot reach a total of 1: the candidate
        # grid is stretched past w_max, so a solution exists but is flagged
        # as overloading the DIPs (the paper's "DO" outcome).
        curves = {
            "a": linear_curve(1.0, 10.0, 0.1),
            "b": linear_curve(1.0, 10.0, 0.1),
        }
        problem = build_assignment_problem(
            curves, total_weight=1.0, total_weight_tolerance=0.01
        )
        outcome = solve_assignment("vip", problem)
        assert outcome.solver_result.is_overloaded

    def test_infeasible_raises_with_explicit_windows(self):
        # Explicit candidate windows disable the stretch, so an unreachable
        # total weight is reported as infeasible.
        curves = {
            "a": linear_curve(1.0, 10.0, 0.1),
            "b": linear_curve(1.0, 10.0, 0.1),
        }
        problem = build_assignment_problem(
            curves,
            total_weight=1.0,
            total_weight_tolerance=0.01,
            windows={"a": (0.0, 0.1), "b": (0.0, 0.1)},
        )
        with pytest.raises(InfeasibleError):
            solve_assignment("vip", problem)

    def test_unnormalised_total_weight(self, heterogeneous_curves):
        problem = build_assignment_problem(heterogeneous_curves, total_weight=0.5)
        outcome = solve_assignment("vip", problem, normalize=False)
        tolerance = problem.total_weight_tolerance
        assert sum(outcome.assignment.weights.values()) == pytest.approx(0.5, abs=tolerance + 1e-9)

    def test_identical_dips_get_similar_weights(self):
        curves = {f"d{i}": quadratic_curve(2.0, 100.0, 0.25) for i in range(5)}
        outcome = compute_weights("vip", curves)
        weights = list(outcome.assignment.weights.values())
        assert max(weights) - min(weights) <= 0.26  # one grid step of slack


class TestMultiStep:
    def test_single_step_for_small_pool(self, heterogeneous_curves):
        outcome = compute_weights_multistep("vip", heterogeneous_curves)
        assert outcome.num_steps == 1

    def test_force_multistep_runs_two_steps(self, heterogeneous_curves):
        outcome = compute_weights_multistep(
            "vip", heterogeneous_curves, force_multistep=True
        )
        assert outcome.num_steps == 2

    def test_refined_objective_not_worse(self, heterogeneous_curves):
        single = compute_weights_multistep(
            "vip", heterogeneous_curves, force_multistep=False
        )
        multi = compute_weights_multistep(
            "vip", heterogeneous_curves, force_multistep=True
        )
        assert (
            multi.assignment.objective_ms
            <= single.assignment.objective_ms * 1.001 + 1e-9
        )

    def test_refine_windows_centered_on_coarse_solution(self, heterogeneous_curves):
        coarse = compute_weights_multistep(
            "vip", heterogeneous_curves, force_multistep=False
        ).assignment
        windows = refine_windows(coarse, heterogeneous_curves, window_fraction=0.1)
        for dip, (lower, upper) in windows.items():
            assert lower <= coarse.weight_for(dip) <= upper + 1e-9

    def test_auto_threshold_uses_config(self, heterogeneous_curves):
        config = IlpConfig(multistep_min_dips=3)
        outcome = compute_weights_multistep("vip", heterogeneous_curves, config=config)
        assert outcome.num_steps == 2

    def test_total_solve_time_aggregates(self, heterogeneous_curves):
        outcome = compute_weights_multistep(
            "vip", heterogeneous_curves, force_multistep=True
        )
        assert outcome.total_solve_time_s >= max(
            s.solver_result.solve_time_s for s in outcome.steps
        )

    def test_multistep_close_to_fine_grid_single_shot(self, heterogeneous_curves):
        """Table 7: two coarse steps lose almost nothing vs one fine step."""
        fine = compute_weights("vip", heterogeneous_curves, config=IlpConfig(weights_per_dip=50))
        multi = compute_weights_multistep(
            "vip",
            heterogeneous_curves,
            config=IlpConfig(weights_per_dip=10),
            force_multistep=True,
        )
        assert multi.assignment.objective_ms <= fine.assignment.objective_ms * 1.05

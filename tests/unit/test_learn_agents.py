"""Agents: arm library, learning updates, and state round-trips.

The checkpoint contract is the sharp edge: ``state_dict`` must carry the
complete mutable state — including the RNG — so a restored agent produces
the identical draw sequence the original would have.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.learn import (
    AgentSpec,
    EpsilonGreedyBandit,
    RandomAgent,
    ReinforceAgent,
    UniformAgent,
    WeightArms,
    agent_registry,
    make_agent,
)

N_DIPS = 4
OBS_SIZE = 3 * N_DIPS + 1


def observation() -> np.ndarray:
    return np.linspace(0.0, 1.0, OBS_SIZE)


class TestWeightArms:
    def test_arm_zero_is_the_uniform_split(self):
        arms = WeightArms(N_DIPS, seed=5)
        assert np.allclose(arms.weights(0), 1.0 / N_DIPS)

    def test_auto_arm_count_scales_with_pool(self):
        assert WeightArms(N_DIPS, seed=0).num_arms == 2 * N_DIPS + 1
        assert WeightArms(N_DIPS, num_arms=6, seed=0).num_arms == 6

    def test_arms_are_normalized_and_seed_deterministic(self):
        a = WeightArms(N_DIPS, seed=9)
        b = WeightArms(N_DIPS, seed=9)
        c = WeightArms(N_DIPS, seed=10)
        assert np.array_equal(a.vectors, b.vectors)
        assert not np.array_equal(a.vectors, c.vectors)
        assert np.allclose(a.vectors.sum(axis=1), 1.0)
        assert np.all(a.vectors > 0)


class TestBandit:
    def test_q_update_is_the_incremental_mean(self):
        agent = EpsilonGreedyBandit(N_DIPS, OBS_SIZE, seed=0)
        agent.begin_episode()
        agent._last_arm = 2
        agent.observe(-10.0)
        agent._last_arm = 2
        agent.observe(-20.0)
        assert agent.counts[2] == 2
        assert agent.q[2] == pytest.approx(-15.0)

    def test_epsilon_decays_per_episode(self):
        spec = AgentSpec(name="bandit", epsilon=0.4, epsilon_decay=0.5)
        agent = EpsilonGreedyBandit(N_DIPS, OBS_SIZE, seed=0, spec=spec)
        assert agent.epsilon == pytest.approx(0.4)
        agent.begin_episode()
        agent.end_episode()
        assert agent.epsilon == pytest.approx(0.4 / 1.5)

    def test_eval_mode_is_greedy_and_draws_nothing(self):
        agent = EpsilonGreedyBandit(N_DIPS, OBS_SIZE, seed=0)
        agent.q[3] = 1.0  # strictly best under zero-init
        before = json.dumps(agent.rng.bit_generator.state)
        agent.begin_episode(training=False)
        weights = agent.act(observation())
        assert np.array_equal(weights, agent.arms.weights(3))
        assert json.dumps(agent.rng.bit_generator.state) == before

    def test_state_round_trip_preserves_the_draw_sequence(self):
        agent = EpsilonGreedyBandit(N_DIPS, OBS_SIZE, seed=1)
        agent.begin_episode()
        for _ in range(5):
            agent.act(observation())
            agent.observe(-3.0)
        state = json.loads(json.dumps(agent.state_dict()))  # JSON-safe
        clone = EpsilonGreedyBandit(N_DIPS, OBS_SIZE, seed=1)
        clone.load_state_dict(state)
        clone.begin_episode()
        agent.begin_episode()
        for _ in range(5):
            assert np.array_equal(agent.act(observation()),
                                  clone.act(observation()))

    def test_mismatched_arm_count_rejected_on_load(self):
        agent = EpsilonGreedyBandit(N_DIPS, OBS_SIZE, seed=0)
        other = EpsilonGreedyBandit(
            N_DIPS, OBS_SIZE, seed=0, spec=AgentSpec(name="bandit", num_arms=3)
        )
        with pytest.raises(ConfigurationError, match="arm count"):
            other.load_state_dict(agent.state_dict())

    def test_wrong_kind_rejected_on_load(self):
        bandit = EpsilonGreedyBandit(N_DIPS, OBS_SIZE, seed=0)
        uniform = UniformAgent(N_DIPS, OBS_SIZE)
        with pytest.raises(ConfigurationError, match="'uniform'"):
            bandit.load_state_dict(uniform.state_dict())


class TestReinforce:
    def test_gradient_step_moves_probability_toward_rewarded_arm(self):
        agent = ReinforceAgent(N_DIPS, OBS_SIZE, seed=2)
        obs = observation()
        _, probs_before = agent._policy(obs)
        agent.begin_episode()
        agent.act(obs)
        arm = agent._arms_taken[0]
        agent.observe(100.0)  # positive advantage for the taken arm
        agent.end_episode()
        _, probs_after = agent._policy(obs)
        assert probs_after[arm] > probs_before[arm]

    def test_eval_mode_is_argmax_and_draws_nothing(self):
        agent = ReinforceAgent(N_DIPS, OBS_SIZE, seed=2)
        before = json.dumps(agent.rng.bit_generator.state)
        agent.begin_episode(training=False)
        agent.act(observation())
        agent.observe(-1.0)
        agent.end_episode()
        assert json.dumps(agent.rng.bit_generator.state) == before
        assert agent.episode == 0  # eval episodes do not advance training

    def test_state_round_trip_preserves_theta_and_draws(self):
        agent = ReinforceAgent(N_DIPS, OBS_SIZE, seed=3)
        agent.begin_episode()
        for _ in range(4):
            agent.act(observation())
            agent.observe(-2.0)
        agent.end_episode()
        state = json.loads(json.dumps(agent.state_dict()))
        clone = ReinforceAgent(N_DIPS, OBS_SIZE, seed=3)
        clone.load_state_dict(state)
        assert np.array_equal(agent.theta, clone.theta)
        assert agent.baseline == clone.baseline
        agent.begin_episode()
        clone.begin_episode()
        for _ in range(4):
            assert np.array_equal(agent.act(observation()),
                                  clone.act(observation()))


class TestBaselines:
    def test_uniform_agent_always_splits_equally(self):
        agent = UniformAgent(N_DIPS, OBS_SIZE)
        assert np.allclose(agent.act(observation()), 1.0 / N_DIPS)

    def test_random_agent_is_seeded_and_round_trips_its_rng(self):
        a = RandomAgent(N_DIPS, OBS_SIZE, seed=4)
        b = RandomAgent(N_DIPS, OBS_SIZE, seed=4)
        assert np.array_equal(a.act(observation()), b.act(observation()))
        state = json.loads(json.dumps(a.state_dict()))
        c = RandomAgent(N_DIPS, OBS_SIZE, seed=4)
        c.load_state_dict(state)
        assert np.array_equal(a.act(observation()), c.act(observation()))

    def test_random_draws_sum_to_one(self):
        agent = RandomAgent(N_DIPS, OBS_SIZE, seed=0)
        weights = agent.act(observation())
        assert weights.sum() == pytest.approx(1.0)
        assert np.all(weights > 0)


class TestRegistry:
    def test_registry_names_and_trainability(self):
        registry = agent_registry()
        assert set(registry) == {"bandit", "reinforce", "random", "uniform"}
        assert registry["bandit"].trainable
        assert registry["reinforce"].trainable
        assert not registry["random"].trainable
        assert not registry["uniform"].trainable

    @pytest.mark.parametrize("name", ["bandit", "reinforce", "random", "uniform"])
    def test_make_agent_builds_every_kind(self, name):
        agent = make_agent(
            AgentSpec(name=name),
            num_dips=N_DIPS,
            observation_size=OBS_SIZE,
            seed=0,
        )
        assert agent.kind == name

    @pytest.mark.parametrize(
        "kwargs, message",
        [
            ({"name": "dqn"}, "unknown agent"),
            ({"epsilon": 1.5}, "epsilon must be"),
            ({"epsilon_decay": -0.1}, "epsilon_decay"),
            ({"learning_rate": 0.0}, "learning_rate"),
            ({"num_arms": 1}, "num_arms"),
            ({"spread": 1.0}, "spread"),
            ({"reward_scale": 0.0}, "reward_scale"),
            ({"baseline_rate": 0.0}, "baseline_rate"),
        ],
    )
    def test_agent_spec_field_rules(self, kwargs, message):
        with pytest.raises(ConfigurationError, match=message):
            AgentSpec(**kwargs)

"""Unit coverage for the live service mode (``repro serve``).

Framing (hand-rolled HTTP/1.1 + RFC 6455), the exponential-mixture
percentile model, the :class:`LiveSession` mutation/validation/journal
surface, and the headline guarantee: a live session with injected
mutations exports a spec whose batch re-run reproduces the session's
windows and metrics bit-for-bit.
"""

from __future__ import annotations

import asyncio
import json
import math

import pytest

from repro.api.result import RunWindow
from repro.api.runners import execute
from repro.api.spec import EventSpec, ExperimentSpec
from repro.exceptions import ConfigurationError
from repro.service import LiveSession, SessionConflict, mixture_percentile
from repro.service.http import (
    WS_OP_TEXT,
    HttpProtocolError,
    read_request,
    response,
    websocket_accept,
    ws_read_frame,
    ws_text_frame,
)
from repro.service.session import LiveSession as _LiveSession  # noqa: F401


def parse_request(raw: bytes):
    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader)

    return asyncio.run(go())


def read_frame(raw: bytes):
    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await ws_read_frame(reader)

    return asyncio.run(go())


class TestHttpFraming:
    def test_parses_request_line_headers_and_body(self):
        raw = (
            b"POST /events?dry=1 HTTP/1.1\r\n"
            b"Host: x\r\n"
            b"Content-Type: application/json\r\n"
            b"Content-Length: 16\r\n"
            b"\r\n"
            b'{"kind": "noop"}'
        )
        request = parse_request(raw)
        assert request.method == "POST"
        assert request.path == "/events"
        assert request.query == {"dry": ["1"]}
        assert request.header("content-type") == "application/json"
        assert request.json() == {"kind": "noop"}

    def test_clean_eof_yields_none(self):
        assert parse_request(b"") is None

    def test_malformed_request_line_rejected(self):
        with pytest.raises(HttpProtocolError):
            parse_request(b"NONSENSE\r\n\r\n")

    def test_bad_json_body_is_a_protocol_error(self):
        raw = (
            b"POST /events HTTP/1.1\r\nContent-Length: 4\r\n\r\n{{{{"
        )
        request = parse_request(raw)
        with pytest.raises(HttpProtocolError, match="not valid JSON"):
            request.json()

    def test_response_carries_length_and_close(self):
        raw = response(200, b'{"ok": true}')
        head, _, body = raw.partition(b"\r\n\r\n")
        assert b"HTTP/1.1 200 OK" in head
        assert b"Content-Length: 12" in head
        assert b"Connection: close" in head
        assert body == b'{"ok": true}'


class TestWebSocket:
    def test_rfc6455_sample_accept_key(self):
        # The worked example from RFC 6455 section 1.3.
        key = "dGhlIHNhbXBsZSBub25jZQ=="
        assert websocket_accept(key) == "s3pPLMBiTxaQ9kYGzzhZRbK+xOo="

    def test_text_frame_round_trip(self):
        frame = ws_text_frame("hello " * 40)  # >125 bytes: 16-bit length
        opcode, payload = read_frame(frame)
        assert opcode == WS_OP_TEXT
        assert payload.decode() == "hello " * 40

    def test_masked_client_frame_is_unmasked(self):
        payload = b'{"op": "close"}'
        mask = bytes([0x12, 0x34, 0x56, 0x78])
        masked = bytes(b ^ mask[i % 4] for i, b in enumerate(payload))
        frame = bytes([0x81, 0x80 | len(payload)]) + mask + masked
        opcode, decoded = read_frame(frame)
        assert opcode == WS_OP_TEXT
        assert decoded == payload


class TestMixturePercentile:
    def test_single_exponential_median_is_mean_ln2(self):
        p50 = mixture_percentile({"d": 1.0}, {"d": 10.0}, 0.50)
        assert p50 == pytest.approx(10.0 * math.log(2), rel=1e-5)

    def test_p99_exceeds_p50_and_tracks_the_slow_component(self):
        shares = {"fast": 0.9, "slow": 0.1}
        means = {"fast": 5.0, "slow": 50.0}
        p50 = mixture_percentile(shares, means, 0.50)
        p99 = mixture_percentile(shares, means, 0.99)
        assert p50 < p99
        # the 10% slow tail dominates the p99 of the mixture
        assert p99 > 50.0

    def test_empty_mixture_is_nan(self):
        assert math.isnan(mixture_percentile({}, {}, 0.5))
        assert math.isnan(
            mixture_percentile({"d": 0.0}, {"d": 1.0}, 0.5)
        )


def fleet_spec(**overrides) -> ExperimentSpec:
    data = {
        "name": "svc-test",
        "runner": "fleet",
        "pool": {"kind": "uniform", "num_dips": 6},
        "fleet": {"num_vips": 3, "deferred_vips": ["VIP-3"]},
        "timeline": {"window_s": 2.0},
        "seed": 11,
    }
    data.update(overrides)
    return ExperimentSpec.from_dict(data)


def fluid_spec(**overrides) -> ExperimentSpec:
    data = {
        "name": "svc-fluid",
        "runner": "fluid",
        "pool": {"kind": "three_dip"},
        "timeline": {"window_s": 1.0},
        "seed": 5,
    }
    data.update(overrides)
    return ExperimentSpec.from_dict(data)


class TestServeability:
    def test_request_runner_rejected(self):
        spec = fluid_spec()
        spec = spec.with_overrides(
            {"runner": "request", "controller.enabled": False}
        )
        with pytest.raises(ConfigurationError, match="analytic substrates"):
            LiveSession(spec)

    def test_health_mode_rejected_with_reason(self):
        spec = fluid_spec().with_overrides({"health.enabled": True})
        with pytest.raises(ConfigurationError, match="health.enabled"):
            LiveSession(spec)


class TestLiveSessionMutations:
    def test_mutation_stamped_at_next_window_boundary(self):
        session = LiveSession(fluid_spec())
        session.tick()
        session.tick()
        out = session.submit_event({"kind": "dip_fail", "dip": "DIP-LC"})
        assert out["scheduled_time_s"] == session.stepper.clock == 2.0
        assert any(
            entry["label"] == out["label"]
            for entry in session.timeline_view()["pending"]
        )
        session.tick()
        view = session.timeline_view()
        assert [e["label"] for e in view["applied"]] == [out["label"]]
        assert view["pending"] == []

    def test_mutation_before_first_window_lands_at_first_boundary(self):
        session = LiveSession(fluid_spec())
        out = session.submit_event({"kind": "dip_fail", "dip": "DIP-LC"})
        assert out["scheduled_time_s"] == 1.0  # window_s; time_s must be > 0

    def test_journal_records_every_mutation(self):
        session = LiveSession(fluid_spec())
        session.tick()
        session.submit_event({"kind": "dip_fail", "dip": "DIP-LC"})
        session.submit_event({"kind": "arrival_scale", "value": 1.2})
        assert [entry["kind"] for entry in session.journal] == [
            "event",
            "event",
        ]
        assert session.journal[0]["label"].endswith("dip_fail DIP-LC")

    def test_malformed_body_uses_the_validate_error_text(self):
        session = LiveSession(fluid_spec())
        session.tick()
        # the exact text EventSpec.from_dict (repro validate) produces
        with pytest.raises(ConfigurationError) as live_error:
            session.submit_event({"kind": "dip_fail"})
        with pytest.raises(ConfigurationError) as batch_error:
            EventSpec.from_dict({"time_s": 1.0, "kind": "dip_fail"})
        assert str(live_error.value) == str(batch_error.value)

    def test_unknown_dip_rejected_with_pool_names(self):
        session = LiveSession(fluid_spec())
        session.tick()
        with pytest.raises(ConfigurationError, match="unknown DIP 'DIP-9'"):
            session.submit_event({"kind": "dip_fail", "dip": "DIP-9"})

    def test_double_fail_rejected_by_alternation_rule(self):
        session = LiveSession(fluid_spec())
        session.tick()
        session.submit_event({"kind": "dip_fail", "dip": "DIP-LC"})
        session.tick()
        with pytest.raises(ConfigurationError, match="already failed"):
            session.submit_event({"kind": "dip_fail", "dip": "DIP-LC"})

    def test_past_time_rejected(self):
        session = LiveSession(fluid_spec())
        session.tick()
        session.tick()
        with pytest.raises(ConfigurationError, match="already executed"):
            session.submit_event(
                {"kind": "dip_fail", "dip": "DIP-LC", "time_s": 1.0}
            )

    def test_onboard_of_offboarded_vip_rejected(self):
        session = LiveSession(fleet_spec())
        session.tick()
        session.submit_event({"kind": "vip_offboard", "vip": "VIP-2"})
        session.tick()
        # VIP-2 left the fleet entirely; re-onboarding it could never
        # replay (a batch run would defer it from boot), so it is rejected.
        with pytest.raises(ConfigurationError, match="unknown VIP"):
            session.submit_event({"kind": "vip_onboard", "vip": "VIP-2"})

    def test_chaos_drill_injects_seeded_events(self):
        session = LiveSession(fluid_spec())
        session.tick()
        out = session.submit_chaos(
            {
                "horizon_s": 60.0,
                "chaos": {"seed": 3, "failure_rate_per_min": 30.0},
            }
        )
        assert out["starts_at_s"] == 1.0
        assert out["scheduled_events"]
        assert session.timeline_view()["pending"]
        assert session.journal[-1]["kind"] == "chaos"
        # same seed, same drill: the drawn schedule is deterministic
        repeat = LiveSession(fluid_spec())
        repeat.tick()
        again = repeat.submit_chaos(
            {
                "horizon_s": 60.0,
                "chaos": {"seed": 3, "failure_rate_per_min": 30.0},
            }
        )
        assert again["scheduled_events"] == out["scheduled_events"]

    def test_chaos_drill_requires_seed_and_horizon(self):
        session = LiveSession(fluid_spec())
        with pytest.raises(ConfigurationError, match="horizon_s"):
            session.submit_chaos({"chaos": {"seed": 1}})
        with pytest.raises(ConfigurationError, match="seed"):
            session.submit_chaos({"horizon_s": 10.0, "chaos": {}})


class TestVipWindows:
    """Satellite: windowed per-VIP telemetry across onboard/offboard."""

    def test_offboarded_vip_rows_stop_and_shares_stay_normalized(self):
        session = LiveSession(fleet_spec())
        session.tick()
        assert set(session.substrate.vip_ids()) == {"VIP-1", "VIP-2", "VIP-3"}
        session.submit_event({"kind": "vip_offboard", "vip": "VIP-2"})
        session.tick()  # offboard applies at the start of this window
        session.tick()
        assert set(session.substrate.vip_ids()) == {"VIP-1", "VIP-3"}
        # history: VIP-2 has rows only while it was live — no stale rows
        rows = session.vip_stats("VIP-2")["windows"]
        assert [row["end_s"] for row in rows] == [2.0]
        # remaining VIPs' shares renormalize over the survivors
        last = session._vip_history[-1]
        assert set(last["vips"]) == {"VIP-1", "VIP-3"}
        total_share = sum(row["share"] for row in last["vips"].values())
        assert total_share == pytest.approx(1.0)

    def test_deferred_vip_becomes_controlled_after_live_onboard(self):
        session = LiveSession(fleet_spec())
        session.tick()
        assert set(session.substrate.controlled_vip_ids()) == {
            "VIP-1",
            "VIP-2",
        }
        session.submit_event({"kind": "vip_onboard", "vip": "VIP-3"})
        session.tick()
        assert "VIP-3" in session.substrate.controlled_vip_ids()
        vips = {row["vip"]: row["controlled"] for row in session.vips()["vips"]}
        assert vips == {"VIP-1": True, "VIP-2": True, "VIP-3": True}
        # every window row carries all three VIPs, before and after
        for entry in session._vip_history:
            assert set(entry["vips"]) == {"VIP-1", "VIP-2", "VIP-3"}

    def test_unknown_vip_stats_raise_key_error(self):
        session = LiveSession(fleet_spec())
        session.tick()
        with pytest.raises(KeyError):
            session.vip_stats("VIP-9")

    def test_stats_rows_carry_percentiles_and_dip_share(self):
        session = LiveSession(fleet_spec())
        session.tick()
        row = session.vip_stats("VIP-1")["windows"][-1]
        assert row["rate_rps"] > 0
        assert 0 < row["share"] <= 1
        assert row["p50_latency_ms"] < row["p99_latency_ms"]
        assert sum(row["dip_share"].values()) == pytest.approx(1.0)


class TestExportReplay:
    def test_export_before_first_window_conflicts(self):
        session = LiveSession(fluid_spec())
        with pytest.raises(SessionConflict, match="no window"):
            session.export()

    def test_export_during_drain_conflicts(self):
        session = LiveSession(fluid_spec())
        session.tick()
        session.submit_event(
            {"kind": "dip_fail", "dip": "DIP-LC", "drain_s": 30.0}
        )
        session.tick()
        with pytest.raises(SessionConflict, match="drain"):
            session.export()

    def test_fluid_session_replays_bit_identically(self):
        session = LiveSession(fluid_spec())
        session.tick()
        session.submit_event({"kind": "dip_fail", "dip": "DIP-LC"})
        session.tick()
        session.submit_event({"kind": "arrival_scale", "value": 1.25})
        session.tick()
        session.submit_event({"kind": "dip_recover", "dip": "DIP-LC"})
        session.tick()
        session.tick()
        export = session.export()
        live_windows = tuple(
            RunWindow.from_dict(row) for row in export["windows"]
        )
        replayed = execute(ExperimentSpec.from_dict(export["spec"]))
        assert replayed.windows == live_windows
        for key, value in export["metrics"].items():
            got = replayed.metrics[key]
            assert got == value or (got != got and value != value)

    def test_fleet_session_with_live_onboard_replays_bit_identically(self):
        session = LiveSession(fleet_spec())
        session.tick()
        session.submit_event({"kind": "dip_fail", "dip": "DIP-2"})
        session.tick()
        session.submit_event({"kind": "vip_onboard", "vip": "VIP-3"})
        session.tick()
        session.tick()
        export = session.export()
        spec = ExperimentSpec.from_dict(export["spec"])
        # the boot-deferred set survives into the replay spec
        assert spec.fleet.deferred_vips == ("VIP-3",)
        assert spec.timeline.horizon_s == session.stepper.clock
        replayed = execute(spec)
        live_windows = tuple(
            RunWindow.from_dict(row) for row in export["windows"]
        )
        assert replayed.windows == live_windows
        for key, value in export["metrics"].items():
            got = replayed.metrics[key]
            assert got == value or (got != got and value != value)

    def test_pending_events_are_not_exported(self):
        session = LiveSession(fluid_spec())
        session.tick()
        session.submit_event(
            {"kind": "dip_fail", "dip": "DIP-LC", "time_s": 500.0}
        )
        export = session.export()
        assert export["spec"]["timeline"]["events"] == []
        assert len(export["journal"]) == 1

    def test_exported_spec_round_trips_as_json(self):
        session = LiveSession(fluid_spec())
        session.tick()
        session.submit_event({"kind": "arrival_scale", "value": 0.8})
        session.tick()
        blob = json.dumps(session.export()["spec"])
        spec = ExperimentSpec.from_dict(json.loads(blob))
        assert spec.timeline.horizon_s == 2.0
        assert len(spec.timeline.events) == 1


class TestLiveWeightOverrides:
    """``POST /weights``: boundary application, journaling, export guard."""

    def test_override_lands_at_the_next_window_boundary(self):
        session = LiveSession(fluid_spec())
        session.tick()
        out = session.submit_weights({"weights": {"DIP-LC": 10.0, "DIP-HC-1": 1.0, "DIP-HC-2": 1.0}})
        assert out["scheduled_time_s"] == session.stepper.clock == 1.0
        assert "set_weights" in out["label"]
        window = session.tick()
        assert out["label"] in window.events
        assert window.dip_share["DIP-LC"] > 0.5

    def test_override_is_journaled_with_the_session_clock(self):
        session = LiveSession(fluid_spec())
        session.tick()
        session.submit_weights({"weights": {"DIP-LC": 2.0}})
        entry = session.journal[-1]
        assert entry["kind"] == "weights"
        assert entry["time_s"] == 1.0
        assert entry["weights"] == {"DIP-LC": 2.0}

    def test_bad_bodies_use_the_validation_error_text(self):
        session = LiveSession(fluid_spec())
        with pytest.raises(ConfigurationError, match="unknown DIP"):
            session.submit_weights({"weights": {"DIP-404": 1.0}})
        with pytest.raises(ConfigurationError, match="valid fields"):
            session.submit_weights({"weights": {"DIP-LC": 1.0}, "vips": "x"})
        with pytest.raises(ConfigurationError, match="non-empty"):
            session.submit_weights({"weights": {}})

    def test_export_conflicts_after_an_applied_override(self):
        session = LiveSession(fluid_spec())
        session.tick()
        session.submit_weights({"weights": {"DIP-LC": 2.0}})
        session.tick()
        with pytest.raises(SessionConflict, match="weight override"):
            session.export()

    def test_export_still_works_without_overrides(self):
        session = LiveSession(fluid_spec())
        session.tick()
        assert session.export()["spec"]["name"] == "svc-fluid"

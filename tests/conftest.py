"""Shared fixtures for the KnapsackLB test suite."""

from __future__ import annotations

import pytest

from repro.backends import DS1_V2, DS2_V2, DS3_V2, F8S_V2, DipServer, custom_vm_type
from repro.core.config import KnapsackLBConfig
from repro.core.curve import WeightLatencyCurve, fit_curve
from repro.core.types import MeasurementPoint
from repro.sim.fluid import FluidCluster
from repro.workloads import build_testbed_cluster, build_testbed_dips


@pytest.fixture
def small_vm():
    """A 1-core VM type with a round 400 rps capacity."""
    return custom_vm_type("test-1core", vcpus=1, capacity_rps=400.0, idle_latency_ms=2.5)


@pytest.fixture
def two_core_vm():
    return custom_vm_type("test-2core", vcpus=2, capacity_rps=800.0, idle_latency_ms=2.5)


@pytest.fixture
def small_dip(small_vm):
    """A single deterministic 1-core DIP."""
    return DipServer("dip-a", small_vm, seed=1, jitter_fraction=0.0)


@pytest.fixture
def three_dip_cluster(small_vm):
    """Three 1-core DIPs (one at 60 % capacity) behind a weighted LB."""
    dips = {
        "hc1": DipServer("hc1", small_vm, seed=11, jitter_fraction=0.0),
        "hc2": DipServer("hc2", small_vm, seed=12, jitter_fraction=0.0),
        "lc": DipServer("lc", small_vm, seed=13, jitter_fraction=0.0),
    }
    dips["lc"].set_capacity_ratio(0.6)
    total_capacity = sum(d.capacity_rps for d in dips.values())
    return FluidCluster(dips=dips, total_rate_rps=total_capacity * 0.7, policy_name="wrr")


@pytest.fixture
def testbed_cluster():
    """The paper's 30-DIP testbed at 70 % load (fluid model)."""
    return build_testbed_cluster(load_fraction=0.70, seed=42)


@pytest.fixture
def testbed_layout():
    return build_testbed_dips(seed=42)


@pytest.fixture
def default_config():
    return KnapsackLBConfig()


@pytest.fixture
def simple_curve() -> WeightLatencyCurve:
    """A convex, monotone weight-latency curve fitted from clean points."""
    points = [
        MeasurementPoint(weight=0.0, latency_ms=2.0),
        MeasurementPoint(weight=0.05, latency_ms=2.5),
        MeasurementPoint(weight=0.10, latency_ms=4.0),
        MeasurementPoint(weight=0.15, latency_ms=7.5),
        MeasurementPoint(weight=0.20, latency_ms=13.0),
    ]
    return fit_curve(points)


def make_linear_curve(l0: float, slope: float, w_max: float) -> WeightLatencyCurve:
    """A helper for tests that need precisely controlled curves."""
    return WeightLatencyCurve(
        coefficients=(slope, l0),
        l0_ms=l0,
        w_max=w_max,
    )


@pytest.fixture
def vm_catalogue():
    return {"DS1": DS1_V2, "DS2": DS2_V2, "DS3": DS3_V2, "F8": F8S_V2}

"""Property tests for the bursty/heavy-tailed workload generators.

Three families of guarantees:

* **Statistical fidelity** — each generator's empirical mean, SCV and tail
  index match what the spec (and the analytic divergence model) claims.
* **Chunk invariance** — the gap stream is bit-identical per seed
  regardless of the chunk sizes consumers request, which is what makes
  results reproducible across the engine's refill boundaries.
* **Trace replay** — round-trips the input file exactly, in both CSV and
  JSONL forms.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.api.spec import ArrivalSpec, ServiceSpec
from repro.exceptions import ConfigurationError
from repro.sim.client import WorkloadGenerator
from repro.workloads.arrivals import (
    FlashCrowd,
    MarkovModulatedPoisson,
    TraceReplay,
    load_trace_timestamps,
    make_arrival_process,
    unit_service_sampler,
)
from repro.workloads.divergence import (
    mmpp_index_of_dispersion,
    service_scv,
)

RATE = 500.0


def _mmpp(seed=3, **kwargs):
    kwargs.setdefault("state_rates", (0.4, 3.4))
    kwargs.setdefault("switch_rates", (0.5, 0.5))
    return MarkovModulatedPoisson(RATE, seed=seed, **kwargs)


def _flash(seed=3, **kwargs):
    kwargs.setdefault("burst_rate_per_s", 0.2)
    kwargs.setdefault("burst_height", 5.0)
    kwargs.setdefault("burst_decay_s", 2.0)
    return FlashCrowd(RATE, seed=seed, **kwargs)


def _trace_file(tmp_path, *, n=400, fmt="csv", column="timestamp", rate=200.0):
    rng = np.random.default_rng(11)
    times = np.cumsum(rng.exponential(1.0 / rate, size=n))
    if fmt == "csv":
        path = tmp_path / "trace.csv"
        # repr round-trips floats exactly, so replay comparisons are exact.
        lines = [column] + [repr(float(t)) for t in times]
        path.write_text("\n".join(lines) + "\n")
    else:
        path = tmp_path / "trace.jsonl"
        path.write_text(
            "\n".join(json.dumps({column: float(t)}) for t in times) + "\n"
        )
    return path, times


# -- chunk invariance ---------------------------------------------------------


@pytest.mark.parametrize("factory", [_mmpp, _flash], ids=["mmpp", "flash"])
def test_chunk_invariance_exact(factory):
    """produce(n) slicing is bit-identical no matter how n is split."""
    total = 9000
    whole = factory(seed=9).produce(total)

    chunked = factory(seed=9)
    pieces, got = [], 0
    sizes = [1, 7, 64, 1, 511, 4096, 13]
    index = 0
    while got < total:
        n = min(sizes[index % len(sizes)], total - got)
        index += 1
        pieces.append(chunked.produce(n))
        got += n
    assert np.array_equal(whole, np.concatenate(pieces))


def test_chunk_invariance_trace(tmp_path):
    path, _ = _trace_file(tmp_path)
    whole = TraceReplay(RATE, path=str(path)).produce(1000)
    one = TraceReplay(RATE, path=str(path))
    singles = np.concatenate([one.produce(1) for _ in range(1000)])
    assert np.array_equal(whole, singles)


@pytest.mark.parametrize("factory", [_mmpp, _flash], ids=["mmpp", "flash"])
def test_seed_determinism(factory):
    assert np.array_equal(factory(seed=5).produce(5000), factory(seed=5).produce(5000))
    assert not np.array_equal(
        factory(seed=5).produce(5000), factory(seed=6).produce(5000)
    )


def test_fast_path_matches_batch_gaps():
    """The flow-free fast path yields the same gap stream as next_batch."""
    lean = WorkloadGenerator(RATE, seed=1, arrivals=_mmpp(seed=21))
    full = WorkloadGenerator(RATE, seed=1, arrivals=_mmpp(seed=21))
    lean_gaps = np.concatenate(
        [lean.next_interarrival_batch(n) for n in (100, 1, 899)]
    )
    full_gaps = np.concatenate([full.next_batch(n)[0] for n in (500, 500)])
    assert np.array_equal(lean_gaps, full_gaps)


# -- statistical fidelity -----------------------------------------------------


# Fast-mixing parameters for mean-rate assertions: the defaults are so
# bursty (IDC in the hundreds) that even 400k arrivals leave several
# percent of count noise; faster modulation shrinks the IDC without
# changing any of the code paths under test.
def _mmpp_fast(seed=3):
    return _mmpp(seed=seed, switch_rates=(20.0, 20.0))


def _flash_fast(seed=3):
    return _flash(
        seed=seed, burst_rate_per_s=2.0, burst_height=4.0, burst_decay_s=0.25
    )


@pytest.mark.parametrize(
    "factory", [_mmpp_fast, _flash_fast], ids=["mmpp", "flash"]
)
def test_empirical_mean_rate(factory):
    """Long-run arrival rate matches the requested rate within 3%."""
    gaps = factory(seed=2).produce(400_000)
    assert gaps.min() >= 0
    empirical_rate = 1.0 / gaps.mean()
    assert empirical_rate == pytest.approx(RATE, rel=0.03)


def test_mmpp_index_of_dispersion_empirical():
    """Windowed count dispersion approaches the exact MMPP IDC."""
    state_rates = (0.5, 3.0)
    switch_rates = (2.0, 2.0)
    window_s = 20.0  # >> mixing time, so the asymptotic IDC applies
    process = _mmpp(seed=13, state_rates=state_rates, switch_rates=switch_rates)
    times = np.cumsum(process.produce(2_000_000))
    counts = np.bincount((times / window_s).astype(np.int64))[:-1]
    idc_empirical = counts.var() / counts.mean()
    idc_exact = mmpp_index_of_dispersion(RATE, state_rates, switch_rates)
    assert idc_exact > 10  # genuinely bursty at this rate
    assert idc_empirical == pytest.approx(idc_exact, rel=0.40)
    assert idc_empirical > 5  # far outside Poisson (IDC = 1)


@pytest.mark.parametrize(
    "spec",
    [
        ServiceSpec(kind="exponential"),
        ServiceSpec(kind="lognormal", scv=4.0),
        ServiceSpec(kind="elephant", elephant_fraction=0.05, elephant_factor=20.0),
    ],
    ids=["exponential", "lognormal", "elephant"],
)
def test_service_mean_and_scv(spec):
    draws = unit_service_sampler(spec, np.random.default_rng(7))(400_000)
    assert draws.mean() == pytest.approx(1.0, rel=0.02)
    empirical_scv = draws.var() / draws.mean() ** 2
    assert empirical_scv == pytest.approx(service_scv(spec), rel=0.10)


def test_pareto_tail_index_hill():
    """The Hill estimator over the top order statistics recovers alpha."""
    alpha = 2.5
    spec = ServiceSpec(kind="pareto", tail_index=alpha)
    draws = unit_service_sampler(spec, np.random.default_rng(17))(500_000)
    assert draws.mean() == pytest.approx(1.0, rel=0.02)
    tail = np.sort(draws)[-5000:]
    hill = 1.0 / np.mean(np.log(tail / tail[0]))
    assert hill == pytest.approx(alpha, rel=0.10)


# -- arrival_scale / set_rate -------------------------------------------------


@pytest.mark.parametrize(
    "factory", [_mmpp_fast, _flash_fast], ids=["mmpp", "flash"]
)
def test_set_rate_rescales_future_and_pending(factory):
    process = factory(seed=4)
    process.produce(100)  # leave generated-but-unconsumed gaps buffered
    process.set_rate(2 * RATE)
    gaps = process.produce(300_000)
    assert 1.0 / gaps.mean() == pytest.approx(2 * RATE, rel=0.03)


def test_trace_set_rate_is_exact_rescale(tmp_path):
    path, _ = _trace_file(tmp_path)
    baseline = TraceReplay(RATE, path=str(path)).produce(500)
    scaled = TraceReplay(RATE, path=str(path))
    head = scaled.produce(100)
    scaled.set_rate(2 * RATE)
    rest = scaled.produce(400)
    np.testing.assert_allclose(
        np.concatenate([head, rest * 2.0]), baseline, rtol=1e-12
    )


def test_preserve_rate_trace_rejects_set_rate(tmp_path):
    path, _ = _trace_file(tmp_path, rate=200.0)
    process = TraceReplay(123.0, path=str(path), preserve_rate=True)
    assert process.rate_rps == pytest.approx(200.0, rel=0.05)
    with pytest.raises(ConfigurationError, match="preserve_rate"):
        process.set_rate(500.0)


# -- trace replay -------------------------------------------------------------


@pytest.mark.parametrize("fmt", ["csv", "jsonl"])
def test_trace_roundtrip(tmp_path, fmt):
    """Replay reconstructs the trace's own gaps exactly (cyclically)."""
    path, times = _trace_file(tmp_path, n=300, fmt=fmt)
    n_gaps = times.size - 1
    process = TraceReplay(
        999.0, path=str(path), preserve_rate=True
    )  # preserve_rate: no rescaling at all
    gaps = process.produce(1 + 2 * n_gaps)
    # First gap is the synthetic mean gap; then the trace's own diffs, twice.
    span = times[-1] - times[0]
    assert gaps[0] == pytest.approx(span / n_gaps)
    np.testing.assert_allclose(gaps[1 : 1 + n_gaps], np.diff(times), rtol=1e-12)
    assert gaps[1 + n_gaps] == pytest.approx(span / n_gaps)  # wrap gap
    np.testing.assert_allclose(gaps[2 + n_gaps :], np.diff(times)[:-1], rtol=1e-12)


def test_trace_errors_name_the_problem(tmp_path):
    missing = tmp_path / "nope.csv"
    with pytest.raises(ConfigurationError, match="does not exist"):
        load_trace_timestamps(missing)
    bad_column = tmp_path / "bad.csv"
    bad_column.write_text("when\n1.0\n2.0\n")
    with pytest.raises(ConfigurationError, match="no column 'timestamp'"):
        load_trace_timestamps(bad_column)
    unsorted = tmp_path / "unsorted.csv"
    unsorted.write_text("timestamp\n2.0\n1.0\n3.0\n")
    with pytest.raises(ConfigurationError, match="not\\s+sorted"):
        load_trace_timestamps(unsorted)
    bad_json = tmp_path / "bad.jsonl"
    bad_json.write_text('{"timestamp": 1.0}\nnot json\n')
    with pytest.raises(ConfigurationError, match="line 2"):
        load_trace_timestamps(bad_json)


def test_make_arrival_process_kinds(tmp_path):
    assert make_arrival_process(ArrivalSpec(), RATE) is None
    assert make_arrival_process(ArrivalSpec(kind="mmpp"), RATE, seed=1).kind == "mmpp"
    assert (
        make_arrival_process(ArrivalSpec(kind="flash_crowd"), RATE, seed=1).kind
        == "flash_crowd"
    )
    path, _ = _trace_file(tmp_path)
    spec = ArrivalSpec(kind="trace", trace_path=str(path))
    assert make_arrival_process(spec, RATE).kind == "trace"

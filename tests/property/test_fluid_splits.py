"""Property-based tests for the fluid split policies.

Every split policy must conserve the total arrival rate (what goes into a
VIP comes out across its DIPs) and never assign a negative rate, for any
pool composition, weighting and load level.  The vectorized kernels must
also agree with the scalar per-DIP latency model they replaced.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends import DipServer, custom_vm_type
from repro.sim.fluid import (
    pool_arrays,
    split_for_policy,
    vector_mean_latency_ms,
    vector_utilization,
)

ALL_POLICIES = ("rr", "hash", "random", "wrr", "wrandom", "dns", "lc", "wlc", "p2")


@st.composite
def pools(draw, min_dips=1, max_dips=8):
    """A heterogeneous DIP pool plus per-DIP weights."""
    size = draw(st.integers(min_value=min_dips, max_value=max_dips))
    dips = {}
    weights = {}
    for index in range(size):
        cores = draw(st.sampled_from([1, 2, 4, 8]))
        capacity = draw(st.floats(min_value=50.0, max_value=4000.0))
        vm = custom_vm_type(f"vm-{index}", vcpus=cores, capacity_rps=capacity)
        dip_id = f"d{index}"
        dips[dip_id] = DipServer(dip_id, vm, seed=index, jitter_fraction=0.0)
        weights[dip_id] = draw(st.floats(min_value=0.0, max_value=10.0))
    return dips, weights


class TestSplitInvariants:
    @given(
        pool=pools(),
        policy=st.sampled_from(ALL_POLICIES),
        load=st.floats(min_value=0.0, max_value=1.5),
    )
    @settings(max_examples=120, deadline=None)
    def test_splits_conserve_rate_and_stay_nonnegative(self, pool, policy, load):
        dips, weights = pool
        total = load * sum(d.capacity_rps for d in dips.values())
        rates = split_for_policy(policy, dips, total, weights=weights)
        assert set(rates) == set(dips)
        assert all(rate >= 0.0 for rate in rates.values())
        assert sum(rates.values()) == pytest.approx(total, rel=1e-6, abs=1e-6)

    @given(pool=pools(min_dips=2), policy=st.sampled_from(ALL_POLICIES))
    @settings(max_examples=60, deadline=None)
    def test_failed_dips_receive_no_rate(self, pool, policy):
        dips, weights = pool
        total = 0.5 * sum(d.capacity_rps for d in dips.values())
        failed = next(iter(dips))
        dips[failed].fail()
        rates = split_for_policy(policy, dips, total, weights=weights)
        assert failed not in rates
        assert sum(rates.values()) == pytest.approx(total, rel=1e-6, abs=1e-6)

    @given(pool=pools(), load=st.floats(min_value=0.0, max_value=1.5))
    @settings(max_examples=60, deadline=None)
    def test_equal_policies_split_equally(self, pool, load):
        dips, _ = pool
        total = load * sum(d.capacity_rps for d in dips.values())
        rates = split_for_policy("rr", dips, total)
        share = total / len(dips)
        assert all(rate == pytest.approx(share) for rate in rates.values())


class TestVectorizedKernelEquivalence:
    @given(pool=pools(), load=st.floats(min_value=0.0, max_value=2.0))
    @settings(max_examples=80, deadline=None)
    def test_vector_latency_matches_scalar_model(self, pool, load):
        dips, _ = pool
        arrays = pool_arrays(dips)
        rates = np.array([load * s.capacity_rps for s in dips.values()])
        vectorized = vector_mean_latency_ms(arrays, rates)
        for index, server in enumerate(dips.values()):
            scalar = server.latency_model.mean_latency_ms(float(rates[index]))
            assert vectorized[index] == pytest.approx(scalar, rel=1e-12)

    @given(pool=pools(), load=st.floats(min_value=0.0, max_value=2.0))
    @settings(max_examples=40, deadline=None)
    def test_vector_utilization_matches_scalar_model(self, pool, load):
        dips, _ = pool
        arrays = pool_arrays(dips)
        rates = np.array([load * s.capacity_rps for s in dips.values()])
        vectorized = vector_utilization(arrays, rates)
        for index, server in enumerate(dips.values()):
            scalar = server.latency_model.utilization(float(rates[index]))
            assert vectorized[index] == pytest.approx(scalar, rel=1e-12)

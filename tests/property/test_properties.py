"""Property-based tests (hypothesis) for core data structures and invariants."""

from __future__ import annotations

import math

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.backends.latency_model import LatencyModel, erlang_c, scaled_model
from repro.core.curve import fit_curve
from repro.core.exploration import ExplorationState
from repro.core.config import ExplorationConfig
from repro.core.types import MeasurementPoint, normalize_weights
from repro.lb.base import FlowKey
from repro.lb.round_robin import WeightedRoundRobin
from repro.solver import AssignmentProblem, DipCandidates, SolveStatus, solve_branch_and_bound, solve_greedy

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

weights_in_unit = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
latencies = st.floats(min_value=0.1, max_value=500.0, allow_nan=False)


@st.composite
def measurement_points(draw, min_size=3, max_size=10):
    """A sorted set of distinct-weight measurement points."""
    size = draw(st.integers(min_value=min_size, max_value=max_size))
    raw_weights = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=0.5, allow_nan=False),
            min_size=size,
            max_size=size,
            unique=True,
        )
    )
    values = draw(st.lists(latencies, min_size=size, max_size=size))
    return [
        MeasurementPoint(weight=w, latency_ms=l)
        for w, l in zip(sorted(raw_weights), values)
    ]


@st.composite
def assignment_problems(draw):
    """Small feasible-ish multiple-choice knapsack instances."""
    num_dips = draw(st.integers(min_value=1, max_value=4))
    dips = []
    for index in range(num_dips):
        count = draw(st.integers(min_value=2, max_value=4))
        weight_values = sorted(
            draw(
                st.lists(
                    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
                    min_size=count,
                    max_size=count,
                    unique=True,
                )
            )
        )
        latency_values = draw(st.lists(latencies, min_size=count, max_size=count))
        dips.append(
            DipCandidates(
                dip=f"d{index}",
                weights=tuple(weight_values),
                latencies_ms=tuple(latency_values),
            )
        )
    return AssignmentProblem(
        dips=tuple(dips), total_weight=1.0, total_weight_tolerance=0.05
    )


# ---------------------------------------------------------------------------
# curve fitting
# ---------------------------------------------------------------------------


class TestCurveProperties:
    @given(points=measurement_points())
    @settings(max_examples=60, deadline=None)
    def test_fitted_curve_is_monotone_and_above_l0(self, points):
        curve = fit_curve(points)
        grid = [i / 50 for i in range(26)]
        values = [curve.predict(w) for w in grid]
        assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))
        assert all(v >= curve.l0_ms - 1e-9 for v in values)

    @given(points=measurement_points(), delta=st.floats(min_value=0.2, max_value=3.0))
    @settings(max_examples=40, deadline=None)
    def test_rescaling_round_trips(self, points, delta):
        curve = fit_curve(points)
        back = curve.rescaled(delta).rescaled(1.0 / delta)
        for weight in (0.0, 0.1, 0.3):
            assert back.predict(weight) == pytest.approx(curve.predict(weight), rel=1e-6)

    @given(points=measurement_points(), latency=st.floats(min_value=0.5, max_value=400.0))
    @settings(max_examples=40, deadline=None)
    def test_inverse_is_consistent(self, points, latency):
        curve = fit_curve(points)
        weight = curve.weight_for_latency(latency, upper=1.0)
        assert 0.0 <= weight <= 1.0
        if 0.0 < weight < 1.0:
            # At the returned weight the curve has just reached the latency.
            assert curve.predict(weight) >= latency - 1e-6


# ---------------------------------------------------------------------------
# solver
# ---------------------------------------------------------------------------


class TestSolverProperties:
    @given(problem=assignment_problems())
    @settings(max_examples=40, deadline=None)
    def test_branch_and_bound_solutions_are_feasible(self, problem):
        result = solve_branch_and_bound(problem)
        if result.status.has_solution:
            assert abs(result.total_weight - 1.0) <= problem.total_weight_tolerance + 1e-9
            assert set(result.weights) == set(problem.dip_ids())
            assert result.objective_ms == pytest.approx(
                problem.objective_of(result.selection)
            )
        else:
            assert result.status in (SolveStatus.INFEASIBLE, SolveStatus.TIMEOUT)

    @given(problem=assignment_problems())
    @settings(max_examples=40, deadline=None)
    def test_greedy_never_beats_exact(self, problem):
        exact = solve_branch_and_bound(problem)
        heuristic = solve_greedy(problem)
        if exact.status.has_solution and heuristic.status.has_solution:
            assert heuristic.objective_ms >= exact.objective_ms - 1e-6

    @given(problem=assignment_problems())
    @settings(max_examples=30, deadline=None)
    def test_exact_solution_is_optimal_over_enumeration(self, problem):
        assume(problem.num_variables <= 4 ** 3)
        result = solve_branch_and_bound(problem)
        # Brute-force enumeration for small instances.
        import itertools

        best = None
        ranges = [range(c.count) for c in problem.dips]
        for combo in itertools.product(*ranges):
            selection = {c.dip: j for c, j in zip(problem.dips, combo)}
            total = sum(problem.weights_of(selection).values())
            if abs(total - problem.total_weight) <= problem.total_weight_tolerance:
                cost = problem.objective_of(selection)
                if best is None or cost < best:
                    best = cost
        if best is None:
            assert not result.status.has_solution
        else:
            assert result.status.has_solution
            assert result.objective_ms == pytest.approx(best, rel=1e-9)


# ---------------------------------------------------------------------------
# latency model
# ---------------------------------------------------------------------------


class TestLatencyModelProperties:
    @given(
        servers=st.integers(min_value=1, max_value=16),
        capacity=st.floats(min_value=50.0, max_value=5000.0),
        load_a=st.floats(min_value=0.0, max_value=1.5),
        load_b=st.floats(min_value=0.0, max_value=1.5),
    )
    @settings(max_examples=80, deadline=None)
    def test_latency_monotone_in_load(self, servers, capacity, load_a, load_b):
        model = LatencyModel(servers=servers, capacity_rps=capacity, idle_latency_ms=1000 * servers / capacity)
        low, high = sorted((load_a, load_b))
        assert model.mean_latency_ms(high * capacity) >= model.mean_latency_ms(low * capacity) - 1e-9

    @given(
        servers=st.integers(min_value=1, max_value=8),
        load=st.floats(min_value=0.0, max_value=7.9),
    )
    @settings(max_examples=60, deadline=None)
    def test_erlang_c_is_probability(self, servers, load):
        assume(load <= servers)
        value = erlang_c(servers, load)
        assert 0.0 <= value <= 1.0

    @given(
        capacity=st.floats(min_value=100.0, max_value=2000.0),
        factor=st.floats(min_value=0.1, max_value=1.0),
        load=st.floats(min_value=0.0, max_value=0.9),
    )
    @settings(max_examples=60, deadline=None)
    def test_capacity_loss_never_reduces_latency(self, capacity, factor, load):
        model = LatencyModel(servers=2, capacity_rps=capacity, idle_latency_ms=2000 / capacity)
        squeezed = scaled_model(model, factor)
        rate = load * capacity * factor
        assert squeezed.mean_latency_ms(rate) >= model.mean_latency_ms(rate) - 1e-9


# ---------------------------------------------------------------------------
# weights and WRR
# ---------------------------------------------------------------------------


class TestWeightProperties:
    @given(
        raw=st.dictionaries(
            st.sampled_from([f"d{i}" for i in range(6)]),
            st.floats(min_value=0.0, max_value=10.0),
            min_size=1,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_normalize_weights_sums_to_one(self, raw):
        assume(sum(raw.values()) > 0)
        normalized = normalize_weights(raw)
        assert math.isclose(sum(normalized.values()), 1.0, rel_tol=1e-9)
        for dip, value in normalized.items():
            assert value >= 0

    @given(
        weights=st.lists(
            st.floats(min_value=0.0, max_value=1.0), min_size=2, max_size=5
        ),
        requests=st.integers(min_value=200, max_value=600),
    )
    @settings(max_examples=25, deadline=None)
    def test_smooth_wrr_tracks_weights(self, weights, requests):
        assume(sum(weights) > 0.1)
        dips = [f"d{i}" for i in range(len(weights))]
        weight_map = dict(zip(dips, weights))
        policy = WeightedRoundRobin(dips, weights=weight_map)
        counts = {dip: 0 for dip in dips}
        for index in range(requests):
            flow = FlowKey(src_ip="10.0.0.1", src_port=index + 1, dst_ip="vip", dst_port=80)
            counts[policy.select(flow)] += 1
        total_weight = sum(weights)
        for dip, weight in weight_map.items():
            expected = weight / total_weight
            assert counts[dip] / requests == pytest.approx(expected, abs=0.05)


# ---------------------------------------------------------------------------
# exploration
# ---------------------------------------------------------------------------


class TestExplorationProperties:
    @given(
        l0=st.floats(min_value=0.5, max_value=10.0),
        capacity_weight=st.floats(min_value=0.05, max_value=0.6),
        initial=st.floats(min_value=0.01, max_value=0.5),
    )
    @settings(max_examples=50, deadline=None)
    def test_exploration_terminates_and_respects_capacity(
        self, l0, capacity_weight, initial
    ):
        state = ExplorationState(
            dip="d",
            l0_ms=l0,
            initial_weight=initial,
            config=ExplorationConfig(max_iterations=30),
        )
        iterations = 0
        while not state.done and iterations < 60:
            weight = state.propose()
            latency = l0 * (1.0 + 3.0 * (weight / capacity_weight) ** 2)
            dropped = weight > capacity_weight * 1.05
            state.observe(weight, latency, dropped=dropped)
            iterations += 1
        assert state.done
        assert iterations <= 30
        # w_max never exceeds the true capacity-equivalent weight by much.
        assert state.effective_w_max() <= min(1.0, capacity_weight * 1.05) + 1e-9
        # Every proposal stays within [min_weight, 1].
        for step in state.history:
            assert 0 < step.next_weight <= 1.0

"""Integration tests: the KnapsackLB controller end to end on fluid clusters."""

from __future__ import annotations

import pytest

from repro.core import KnapsackLBConfig, KnapsackLBController
from repro.core.config import IlpConfig
from repro.workloads import build_testbed_cluster, build_three_dip_pool
from repro.sim import FluidCluster


@pytest.fixture(scope="module")
def converged_testbed():
    """A converged controller on the 30-DIP testbed (shared across tests)."""
    cluster = build_testbed_cluster(load_fraction=0.70, seed=7)
    controller = KnapsackLBController("vip-1", cluster)
    assignment = controller.converge()
    return cluster, controller, assignment


class TestConvergence:
    def test_weights_sum_to_one(self, converged_testbed):
        _, _, assignment = converged_testbed
        assert sum(assignment.weights.values()) == pytest.approx(1.0)

    def test_weights_scale_with_capacity(self, converged_testbed):
        """Fig. 11: larger DIPs get larger weights (roughly 1:2:4:10)."""
        cluster, _, assignment = converged_testbed
        mean_by_core: dict[int, float] = {}
        for cores in (1, 2, 4, 8):
            dips = [d for d, s in cluster.dips.items() if s.vm_type.vcpus == cores]
            mean_by_core[cores] = sum(assignment.weights.get(d, 0.0) for d in dips) / len(dips)
        assert mean_by_core[1] < mean_by_core[2] < mean_by_core[4] < mean_by_core[8]
        ratio_2 = mean_by_core[2] / mean_by_core[1]
        ratio_8 = mean_by_core[8] / mean_by_core[1]
        assert 1.5 <= ratio_2 <= 2.6
        assert 7.0 <= ratio_8 <= 13.0

    def test_no_dip_overloaded(self, converged_testbed):
        cluster, _, _ = converged_testbed
        assert all(util <= 1.0 for util in cluster.state().utilization.values())

    def test_utilization_roughly_uniform_across_types(self, converged_testbed):
        """Fig. 12(a): KnapsackLB equalises CPU utilization across DIP types."""
        cluster, _, _ = converged_testbed
        utils = cluster.state().utilization
        type_means = []
        for cores in (1, 2, 4, 8):
            dips = [d for d, s in cluster.dips.items() if s.vm_type.vcpus == cores]
            type_means.append(sum(utils[d] for d in dips) / len(dips))
        assert max(type_means) - min(type_means) <= 0.25
        assert max(utils.values()) <= 1.0

    def test_latency_beats_equal_split(self, converged_testbed):
        cluster, _, assignment = converged_testbed
        klb_latency = cluster.state().overall_mean_latency_ms()
        cluster.set_weights({d: 1 / len(cluster.dips) for d in cluster.dips})
        rr_latency = cluster.state().overall_mean_latency_ms()
        cluster.set_weights(dict(assignment.weights))  # restore
        assert klb_latency < rr_latency

    def test_exploration_took_few_iterations(self, converged_testbed):
        """§6.1: 8-10 iterations; fewer than 10 measurements per DIP."""
        _, controller, _ = converged_testbed
        iterations = [e.iteration for e in controller.explorations.values()]
        assert max(iterations) <= 25
        measurements = [e.measurements for e in controller.explorations.values()]
        assert sum(measurements) / len(measurements) <= 15

    def test_every_dip_has_curve(self, converged_testbed):
        cluster, controller, _ = converged_testbed
        assert set(controller.curves) == set(cluster.dips)

    def test_status_reports_all_dips(self, converged_testbed):
        cluster, controller, _ = converged_testbed
        status = controller.status()
        assert set(status) == set(cluster.dips)
        assert all(entry["has_curve"] for entry in status.values())


class TestControllerOnSmallPool:
    def test_three_dip_pool_klb_vs_equal(self):
        """Fig. 14: on the 1×/0.8×/0.6× pool KLB equalises utilization."""
        dips = build_three_dip_pool(capacity_ratio=0.6, cores=1, seed=5)
        total_capacity = sum(d.capacity_rps for d in dips.values())
        cluster = FluidCluster(dips=dips, total_rate_rps=total_capacity * 0.75, policy_name="wrr")
        controller = KnapsackLBController("vip-3dip", cluster)
        controller.converge()
        utils = cluster.state().utilization
        assert max(utils.values()) - min(utils.values()) <= 0.25
        # The low-capacity DIP receives the smallest weight.
        weights = controller.last_assignment.weights
        assert weights["DIP-LC"] < weights["DIP-HC-1"]

    def test_theta_constraint_respected(self):
        dips = build_three_dip_pool(capacity_ratio=0.6, cores=1, seed=5)
        total_capacity = sum(d.capacity_rps for d in dips.values())
        cluster = FluidCluster(dips=dips, total_rate_rps=total_capacity * 0.6, policy_name="wrr")
        config = KnapsackLBConfig(ilp=IlpConfig(theta=0.15))
        controller = KnapsackLBController("vip", cluster, config=config)
        assignment = controller.converge(settle_steps=0)
        values = list(assignment.weights.values())
        # Normalisation can stretch the spread slightly beyond theta.
        assert max(values) - min(values) <= 0.15 * 1.5 + 1e-9


class TestControlLoop:
    def make_converged(self, load=0.7):
        cluster = build_testbed_cluster(load_fraction=load, seed=11)
        controller = KnapsackLBController("vip-dyn", cluster)
        controller.converge()
        return cluster, controller

    def test_steady_state_remains_stable(self):
        """After convergence the control loop must not oscillate or overload."""
        cluster, controller = self.make_converged()
        for _ in range(4):
            report = controller.control_step()
            # Residual curve-calibration events are tolerable, but they must
            # stay few and must never push a DIP into overload.
            assert len(report.events) <= 3
            assert not report.failed_dips
            assert max(cluster.state().utilization.values()) <= 1.0

    def test_failure_detected_and_weights_recomputed(self):
        """Fig. 15: failed DIPs are removed and their weight redistributed."""
        cluster, controller = self.make_converged()
        before = dict(controller.last_assignment.weights)
        cluster.fail_dip("DIP-25")
        cluster.fail_dip("DIP-26")
        report = controller.control_step()
        assert set(report.failed_dips) == {"DIP-25", "DIP-26"}
        assert report.reprogrammed
        after = controller.last_assignment.weights
        assert after.get("DIP-25", 0.0) == 0.0
        assert after.get("DIP-26", 0.0) == 0.0
        assert sum(after.values()) == pytest.approx(1.0)
        # The freed weight is redistributed across the surviving DIPs without
        # overloading any of them (the ILP makes latency-informed decisions,
        # so the split is *not* uniform — Fig. 15).
        gains = {d: after.get(d, 0.0) - before.get(d, 0.0) for d in after}
        assert sum(gains.values()) > 0.05  # the failed DIPs' weight moved
        spread = max(gains.values()) - min(g for d, g in gains.items() if d not in ("DIP-25", "DIP-26"))
        assert spread > 1e-4  # not an equal split
        assert max(cluster.state().utilization.values()) <= 1.0

    def test_capacity_change_rescales_and_reprograms(self):
        """Fig. 16: capacity loss on DIP-25..28 shrinks their weights."""
        cluster, controller = self.make_converged()
        before = dict(controller.last_assignment.weights)
        for dip in ("DIP-25", "DIP-26", "DIP-27", "DIP-28"):
            cluster.set_capacity_ratio(dip, 0.75)
        report = controller.control_step()
        assert report.reprogrammed
        after = controller.last_assignment.weights
        for dip in ("DIP-25", "DIP-26", "DIP-27", "DIP-28"):
            assert after[dip] < before[dip]
        assert max(cluster.state().utilization.values()) <= 1.0

    def test_traffic_increase_detected(self):
        """Fig. 17: +10 % traffic is detected as a cluster-wide event."""
        cluster, controller = self.make_converged(load=0.7)
        cluster.scale_traffic(1.25)
        report = controller.control_step()
        kinds = {event.kind.value for event in report.events}
        assert "traffic_increase" in kinds or "capacity_change" in kinds
        assert report.reprogrammed

    def test_recover_dip_allows_reexploration(self):
        cluster, controller = self.make_converged()
        cluster.fail_dip("DIP-29")
        controller.control_step()
        assert "DIP-29" in controller.failed_dips
        cluster.recover_dip("DIP-29")
        controller.recover_dip("DIP-29")
        assert "DIP-29" not in controller.failed_dips

"""End-to-end smoke of the live service daemon (the CI serve check).

Boots ``python -m repro serve`` as a real subprocess on an ephemeral port,
drives it over real sockets — REST polls, a live ``POST /events``
mutation, a WebSocket subscription — then exports the session and
re-runs the exported spec in batch, asserting the replay reproduces the
live session's windows and metrics bit-for-bit.  Finishes with a graceful
SIGTERM shutdown (exit code 0).
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import signal
import socket
import struct
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.api.result import RunWindow
from repro.api.runners import execute
from repro.api.spec import ExperimentSpec

REPO_ROOT = Path(__file__).resolve().parents[2]
WS_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

SPEC = {
    "name": "serve-e2e",
    "runner": "fluid",
    "pool": {"kind": "uniform", "num_dips": 4},
    "timeline": {"window_s": 0.5},
    "seed": 13,
}


def _get(port: int, path: str):
    try:
        with urllib.request.urlopen(
            f"http://127.0.0.1:{port}{path}", timeout=10
        ) as reply:
            return reply.status, json.loads(reply.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _post(port: int, path: str, body: dict):
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=json.dumps(body).encode(),
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as reply:
            return reply.status, json.loads(reply.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _read_ws_frame(sock: socket.socket, buffer: bytes) -> tuple[dict, bytes]:
    """One server text frame from the stream; returns (payload, leftover)."""
    while True:
        if len(buffer) >= 2:
            length = buffer[1] & 0x7F
            offset = 2 + (2 if length == 126 else 8 if length == 127 else 0)
            if len(buffer) >= offset:
                if length == 126:
                    length = struct.unpack(">H", buffer[2:4])[0]
                elif length == 127:
                    length = struct.unpack(">Q", buffer[2:10])[0]
                if len(buffer) >= offset + length:
                    payload = buffer[offset : offset + length]
                    return json.loads(payload), buffer[offset + length :]
        chunk = sock.recv(65536)
        if not chunk:
            raise AssertionError("websocket closed before a frame arrived")
        buffer += chunk


@pytest.fixture
def daemon(tmp_path):
    spec_path = tmp_path / "serve-e2e.json"
    spec_path.write_text(json.dumps(SPEC))
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve", str(spec_path),
            "--port", "0", "--time-scale", "20",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
        cwd=str(tmp_path),
    )
    try:
        banner = process.stdout.readline()
        assert "serving" in banner, (
            f"daemon failed to boot: {banner!r} / {process.stderr.read()}"
        )
        port = int(banner.strip().rsplit(":", 1)[1])
        deadline = time.monotonic() + 15
        while True:
            try:
                status, health = _get(port, "/healthz")
                assert status == 200 and health["status"] == "ok"
                break
            except (OSError, urllib.error.URLError):
                if time.monotonic() > deadline:
                    raise AssertionError("daemon never became healthy")
                time.sleep(0.05)
        yield process, port
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=10)


def _wait_for_windows(port: int, count: int, timeout: float = 30.0) -> dict:
    deadline = time.monotonic() + timeout
    while True:
        _, health = _get(port, "/healthz")
        if health["windows"] >= count:
            return health
        if time.monotonic() > deadline:
            raise AssertionError(
                f"daemon stuck at {health['windows']} windows"
            )
        time.sleep(0.05)


def test_serve_smoke_end_to_end(daemon):
    process, port = daemon

    # -- liveness + identity
    status, health = _get(port, "/healthz")
    assert status == 200
    assert health["name"] == "serve-e2e"
    assert health["runner"] == "fluid"

    # -- subscribe to the stream before mutating
    sock = socket.create_connection(("127.0.0.1", port), timeout=10)
    key = base64.b64encode(b"serve-e2e-nonce!").decode()
    sock.sendall(
        (
            "GET /stream HTTP/1.1\r\nHost: t\r\nUpgrade: websocket\r\n"
            f"Connection: Upgrade\r\nSec-WebSocket-Key: {key}\r\n\r\n"
        ).encode()
    )
    head = b""
    while b"\r\n\r\n" not in head:
        head += sock.recv(4096)
    head_text, _, leftover = head.partition(b"\r\n\r\n")
    assert b"101 Switching Protocols" in head_text
    expected = base64.b64encode(
        hashlib.sha1((key + WS_GUID).encode()).digest()
    ).decode()
    assert expected.encode() in head_text

    # -- live mutation once at least one window has run
    _wait_for_windows(port, 1)
    status, scheduled = _post(
        port, "/events", {"kind": "dip_fail", "dip": "DIP-2"}
    )
    assert status == 200, scheduled
    fail_label = scheduled["label"]

    # -- malformed bodies get the validator's text as 422
    status, error = _post(port, "/events", {"kind": "dip_fail"})
    assert status == 422
    assert error["error"] == (
        "timeline.events: event 'dip_fail' needs the dip field"
    )

    # -- the mutation lands in the applied timeline
    deadline = time.monotonic() + 30
    while True:
        _, view = _get(port, "/timeline")
        if any(row["label"] == fail_label for row in view["applied"]):
            break
        assert time.monotonic() < deadline, view
        time.sleep(0.05)

    # -- and in the WebSocket stream: some window names the event
    labels: list[str] = []
    while fail_label not in labels:
        frame, leftover = _read_ws_frame(sock, leftover)
        assert frame["type"] == "window"
        labels.extend(frame["events"])
    sock.close()

    # -- per-VIP windowed stats with percentiles
    status, stats = _get(port, "/vip/vip/stats")
    assert status == 200
    row = stats["windows"][-1]
    assert row["rate_rps"] > 0
    assert row["p50_latency_ms"] < row["p99_latency_ms"]
    status, _ = _get(port, "/vip/no-such/stats")
    assert status == 404

    # -- export the session and replay it in batch, bit-for-bit
    recover_time = None
    status, scheduled = _post(
        port, "/events", {"kind": "dip_recover", "dip": "DIP-2"}
    )
    assert status == 200
    recover_time = scheduled["scheduled_time_s"]
    _wait_for_windows(port, int(recover_time / SPEC["timeline"]["window_s"]) + 2)
    status, session = _get(port, "/session")
    assert status == 200
    exported = ExperimentSpec.from_dict(session["spec"])
    assert len(exported.timeline.events) == 2  # fail + recover, as applied
    assert [entry["kind"] for entry in session["journal"]] == [
        "event",
        "event",
    ]
    live_windows = tuple(
        RunWindow.from_dict(row) for row in session["windows"]
    )
    replayed = execute(exported)
    assert replayed.windows == live_windows
    for key_name, value in session["metrics"].items():
        got = replayed.metrics[key_name]
        assert got == value or (got != got and value != value), (
            key_name, value, got,
        )

    # -- graceful shutdown: SIGTERM → exit 0
    process.send_signal(signal.SIGTERM)
    assert process.wait(timeout=15) == 0

"""Integration tests: KnapsackLB weights evaluated on the request-level
simulator, working through different LB facades (§6.2, §6.5)."""

from __future__ import annotations

import pytest

from repro.core import KnapsackLBController
from repro.lb import (
    AzureTrafficManagerSim,
    HAProxySim,
    LeastConnection,
    MuxPool,
    NginxSim,
    RoundRobin,
    WeightedRoundRobin,
)
from repro.sim import FluidCluster, RequestCluster
from repro.workloads import build_three_dip_pool


def compute_klb_weights(dips, load_fraction=0.75, seed=3):
    """Run the controller against a fluid twin of the pool and return weights."""
    total_capacity = sum(d.capacity_rps for d in dips.values())
    fluid = FluidCluster(
        dips=dips, total_rate_rps=total_capacity * load_fraction, policy_name="wrr"
    )
    controller = KnapsackLBController("vip-e2e", fluid)
    assignment = controller.converge()
    return dict(assignment.weights), total_capacity * load_fraction


class TestKlbVersusBaselinesOnRequestSim:
    @pytest.fixture(scope="class")
    def pool_and_weights(self):
        dips = build_three_dip_pool(capacity_ratio=0.6, cores=1, seed=21)
        weights, rate = compute_klb_weights(dips, load_fraction=0.75)
        return dips, weights, rate

    def run_policy(self, dips_factory, policy_factory, rate, requests=6000, seed=5):
        dips = dips_factory()
        policy = policy_factory(list(dips))
        cluster = RequestCluster(dips, policy, rate_rps=rate, seed=seed)
        return cluster.run(num_requests=requests, warmup_s=2.0)

    def test_klb_latency_beats_rr_and_scaled_out_lc(self, pool_and_weights):
        """Fig. 14: KLB cuts latency vs RR and (scaled-out) LC on the 3-DIP pool.

        Least connection is evaluated through a MUX pool (Fig. 1: production
        LBs run many MUX instances, each with only local connection counts);
        a single omniscient LC instance is a stronger baseline than any real
        deployment and is covered separately below.
        """
        _, weights, rate = pool_and_weights

        def fresh_dips():
            return build_three_dip_pool(capacity_ratio=0.6, cores=1, seed=21)

        rr = self.run_policy(fresh_dips, RoundRobin, rate)
        lc8 = self.run_policy(
            fresh_dips,
            lambda dips: MuxPool(lambda: LeastConnection(dips), num_muxes=8),
            rate,
        )
        klb = self.run_policy(
            fresh_dips,
            lambda dips: WeightedRoundRobin(dips, weights=weights),
            rate,
        )
        assert klb.metrics.mean_latency_ms() < rr.metrics.mean_latency_ms()
        assert klb.metrics.mean_latency_ms() < lc8.metrics.mean_latency_ms()

    def test_klb_competitive_with_ideal_single_mux_lc(self, pool_and_weights):
        """An idealised single-MUX LC pools queues adaptively and is a very
        strong baseline; KLB's static weights must stay within a small factor
        of it (the paper's testbed LC was much weaker than this)."""
        _, weights, rate = pool_and_weights

        def fresh_dips():
            return build_three_dip_pool(capacity_ratio=0.6, cores=1, seed=21)

        lc = self.run_policy(fresh_dips, LeastConnection, rate)
        klb = self.run_policy(
            fresh_dips,
            lambda dips: WeightedRoundRobin(dips, weights=weights),
            rate,
        )
        assert klb.metrics.mean_latency_ms() < lc.metrics.mean_latency_ms() * 2.0

    def test_klb_keeps_slow_dip_cooler(self, pool_and_weights):
        _, weights, rate = pool_and_weights
        dips = build_three_dip_pool(capacity_ratio=0.6, cores=1, seed=21)
        policy = WeightedRoundRobin(list(dips), weights=weights)
        cluster = RequestCluster(dips, policy, rate_rps=rate, seed=6)
        result = cluster.run(num_requests=6000, warmup_s=2.0)
        utils = result.metrics.utilization()
        assert utils["DIP-LC"] <= max(utils["DIP-HC-1"], utils["DIP-HC-2"]) + 0.12

    def test_klb_drop_fraction_lower_than_rr(self, pool_and_weights):
        _, weights, rate = pool_and_weights

        def fresh_dips():
            return build_three_dip_pool(capacity_ratio=0.6, cores=1, seed=21)

        rr = self.run_policy(fresh_dips, RoundRobin, rate)
        klb = self.run_policy(
            fresh_dips, lambda dips: WeightedRoundRobin(dips, weights=weights), rate
        )
        assert klb.drop_fraction <= rr.drop_fraction + 1e-9


class TestWorkingThroughFacades:
    """§6.5: KnapsackLB programs HAProxy, Nginx and DNS (Azure TM) alike."""

    WEIGHTS = {"DIP-HC-1": 0.2, "DIP-HC-2": 0.3, "DIP-LC": 0.5}

    def request_share(self, facade, rate=300.0, requests=8000, seed=9):
        dips = build_three_dip_pool(capacity_ratio=1.0, cores=1, seed=31)
        cluster = RequestCluster(dips, facade.policy, rate_rps=rate, seed=seed)
        cluster.run(num_requests=requests)
        return cluster.request_share()

    def test_haproxy_honours_programmed_weights(self):
        lb = HAProxySim(list(self.WEIGHTS), algorithm="weighted-roundrobin")
        lb.set_weights(self.WEIGHTS)
        share = self.request_share(lb)
        for dip, weight in self.WEIGHTS.items():
            assert share[dip] == pytest.approx(weight, abs=0.03)

    def test_nginx_honours_programmed_weights(self):
        """Table 5, row 1: Nginx splits 20/30/50."""
        lb = NginxSim(list(self.WEIGHTS), algorithm="weighted-roundrobin")
        lb.set_weights(self.WEIGHTS)
        share = self.request_share(lb)
        assert share["DIP-LC"] == pytest.approx(0.5, abs=0.03)

    def test_azure_traffic_manager_approximates_weights(self):
        """Table 5, row 2: DNS splits roughly follow the weights (cache skew)."""
        tm = AzureTrafficManagerSim(list(self.WEIGHTS), cache_ttl_s=5.0, seed=13)
        tm.set_weights(self.WEIGHTS)
        share = self.request_share(tm)
        for dip, weight in self.WEIGHTS.items():
            assert share[dip] == pytest.approx(weight, abs=0.12)

    def test_mux_pool_end_to_end(self):
        dips = build_three_dip_pool(capacity_ratio=1.0, cores=1, seed=31)
        pool = MuxPool(lambda: WeightedRoundRobin(list(dips)), num_muxes=3)
        pool.program_weights(self.WEIGHTS)
        cluster = RequestCluster(dips, pool, rate_rps=300.0, seed=9)
        cluster.run(num_requests=6000)
        share = cluster.request_share()
        assert share["DIP-LC"] == pytest.approx(0.5, abs=0.05)

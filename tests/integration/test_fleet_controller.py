"""Integration: the multi-VIP control plane end to end on a shared fleet.

The acceptance scenario of the fleet-scale refactor: 8 VIPs sharing 32
DIPs run measurement, per-VIP ILP weights and dynamics through one
FleetController, with rounds from different VIPs interleaved on the shared
clock.
"""

from __future__ import annotations

import pytest

from repro.experiments import get_scenario, list_scenarios, run_scenario
from repro.exceptions import ConfigurationError


@pytest.fixture(scope="module")
def shared_dip_result():
    """The 8-VIP / 32-DIP shared-fleet scenario, run once for all tests."""
    return run_scenario("multi_vip_shared_dips")


class TestScenarioRegistry:
    def test_builtin_scenarios_registered(self):
        names = {spec.name for spec in list_scenarios()}
        assert {
            "single_vip_testbed",
            "multi_vip_shared_dips",
            "staggered_vip_onboarding",
            "per_vip_traffic_mix",
            "datacenter_scale_fluid",
            "request_vs_fluid_crosscheck",
        } <= names

    def test_request_vs_fluid_crosscheck_agrees_on_means(self):
        """The two simulators agree on mean latency (reduced request count)."""
        result = run_scenario("request_vs_fluid_crosscheck", num_requests=60_000)
        assert result.metrics["mean_rel_delta"] < 0.05
        # streaming arrivals: the heap never scales with the request count.
        assert result.metrics["peak_scheduled_events"] < 3000
        assert result.metrics["max_share_deviation"] < 0.02

    def test_unknown_scenario_raises(self):
        with pytest.raises(ConfigurationError):
            run_scenario("definitely-not-a-scenario")

    def test_defaults_can_be_overridden(self):
        spec = get_scenario("multi_vip_shared_dips")
        assert spec.defaults["num_vips"] == 8
        result = run_scenario(
            "multi_vip_shared_dips",
            num_vips=2,
            num_dips=6,
            settle_steps=2,
            control_steps=1,
        )
        assert result.params["num_vips"] == 2
        assert result.metrics["vips_with_assignment"] == 2.0


class TestMultiVipSharedDips:
    def test_acceptance_scale(self, shared_dip_result):
        """≥8 VIPs sharing ≥32 DIPs, end to end through FleetController."""
        assert shared_dip_result.params["num_vips"] >= 8
        assert shared_dip_result.params["num_dips"] >= 32
        assert shared_dip_result.metrics["vips_with_assignment"] == 8.0
        assert shared_dip_result.metrics["shared_dips"] >= 1.0

    def test_measurement_rounds_interleave(self, shared_dip_result):
        metrics = shared_dip_result.metrics
        assert metrics["measurement_rounds"] > 0
        # The whole point of the fleet scheduler: most rounds carry
        # measurements from more than one VIP.
        assert metrics["interleaved_rounds"] >= metrics["measurement_rounds"] * 0.5

    def test_no_dip_measured_twice_per_round(self, shared_dip_result):
        plane = shared_dip_result.detail["plane"]
        assert plane.round_log
        for entry in plane.round_log:
            measured = entry.measured_dips()
            assert len(measured) == len(set(measured))

    def test_squeeze_arrives_as_timeline_event(self, shared_dip_result):
        """The antagonist squeeze is a declarative timeline event now."""
        squeezed = shared_dip_result.detail["squeezed_dip"]
        labels = [
            label for window in shared_dip_result.windows for label in window.events
        ]
        assert any("capacity_ratio" in label and squeezed in label for label in labels)

    def test_converged_fleet_is_healthy(self, shared_dip_result):
        metrics = shared_dip_result.metrics
        assert metrics["converged_max_utilization"] <= 1.0
        assert metrics["converged_latency_ms"] < 50.0

    def test_dynamics_react_to_shared_capacity_squeeze(self, shared_dip_result):
        metrics = shared_dip_result.metrics
        assert metrics["post_squeeze_events"] >= 1.0
        assert metrics["post_squeeze_reprograms"] >= 1.0
        assert metrics["final_max_utilization"] <= 1.0


class TestStaggeredOnboarding:
    def test_late_vips_join_live_fleet(self):
        result = run_scenario(
            "staggered_vip_onboarding", num_vips=4, num_dips=12, initial_vips=2
        )
        assert result.metrics["steady_vips"] == 4.0
        assert result.metrics["total_rounds"] > result.metrics["first_wave_rounds"]
        assert result.metrics["max_utilization"] <= 1.0


class TestPerVipTrafficMix:
    def test_controlled_vips_converge_amid_background_tenants(self):
        result = run_scenario("per_vip_traffic_mix", num_vips=4, num_dips=12)
        assert result.metrics["measurement_rounds"] > 0
        assert result.metrics["max_utilization"] <= 1.0
        assert result.metrics["controlled_mean_latency_ms"] < 50.0
